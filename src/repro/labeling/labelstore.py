"""Packed flat-array label storage with merge-join query kernels.

The paper's C++ implementation owes its microsecond queries to label
entries packed into contiguous 64-bit words (Section VI-A).  The seed
reproduction stored each vertex's labels as a Python list of 4-tuples
``(hub_pos, dist, count, canonical)`` — ~120 bytes per entry of pointer
chasing — and the internal ``qdist``/``derived_out_map`` queries rebuilt a
dict on every call.  :class:`LabelStore` is the packed replacement:

* ``packed[v]`` — an ``array('Q')`` of entries in the paper's 23/17/24
  bit layout (:mod:`repro.labeling.packing`), sorted by hub rank; hub
  bits occupy the *high* end of the word, so integer order on packed
  words is hub order and a plain :func:`bisect.bisect_left` against
  ``hub << HUB_SHIFT`` locates a hub without any key lambda.
* ``canon[v]`` — a per-vertex bitset (one Python int; bit ``i`` is entry
  ``i``'s canonical flag).  The 64 payload bits are fully spent on
  vertex/distance/count, exactly as in the paper, so the flag lives in a
  parallel structure instead of stealing a bit from the layout.
* ``big[v]`` — exact counts for entries whose count saturates the 24-bit
  field (``count >= COUNT_SATURATED`` stores the clamp in the word and
  the exact Python int here).  Pure-Python counts stay arbitrary
  precision — ``sccnt`` answers with 2**26 cycles remain exact — while
  the packed word matches what fixed-width C++ would hold.
* ``_maps[v]`` — a lazily built, incrementally maintained join
  accelerator ``{hub: (dist, exact_count, canonical)}``.  CPython's
  interpreter economics invert the C++ picture: a two-pointer scan over
  boxed ``array('Q')`` words is *slower* than the old tuple merge
  (measured 0.3–1.0x), while iterating the smaller side's map and
  probing the larger side's dict at C speed is 2–5x faster.  The query
  kernels below and every maintenance pruning query therefore
  merge-join through the maps, and the packed arrays remain the ground
  truth for ordering, persistence, and footprint.
* ``_bydist[v]`` — the same entries as ``(dist, hub, exact_count)``
  tuples sorted by distance.  Joining in increasing iterate-side
  distance admits an early exit — once the running best sum ``B`` is
  known, entries with ``dist > B`` cannot improve or tie it (probe-side
  distances are >= 0) — which cuts the iteration count by another
  1.3–3x on the benchmark graphs (the paper's graphs have short cycles
  but long-tailed label distances).

Snapshots (:meth:`LabelStore.snapshot`) implement the read side of the
single-writer / multi-reader serving engine (:mod:`repro.service`):
taking one is a pointer-level copy of the per-vertex lists — the
``array('Q')`` payloads, overflow tables, and resident accelerators are
*shared* — after which the live store goes copy-on-write at per-vertex
granularity.  The first mutation of a vertex since the last snapshot
clones just that vertex's structures (:meth:`_own`), so a snapshot costs
O(n) pointers up front plus O(dirty vertices) data over its lifetime,
never a full copy.  The snapshot itself is frozen: any mutation raises
:class:`~repro.errors.FrozenSnapshotError`, which is what makes a
published snapshot safe to read from many threads while the writer keeps
repairing the live store.

Serialization (:meth:`LabelStore.to_bytes` / :meth:`from_bytes`) dumps
the packed arrays with ``array.tobytes`` — one memcpy per vertex instead
of the seed's per-entry ``struct.pack`` loop — and restores them with
``array.frombytes``.  A standalone store defers accelerator
construction until a caller asks for it (``ensure_maps`` & co.); note
that ``CSCIndex`` asks at construction time, so a live index always has
its accelerators resident.

:class:`LabelTable` / :class:`LabelView` are list-compatible facades so
diagnostics and the existing test suite keep reading (and corrupting)
labels as if they were the old tuple lists; every write goes through the
store so the packed arrays never drift from what queries see.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left
from collections.abc import Iterable, Iterator, Sequence

from repro.errors import FrozenSnapshotError, SerializationError
from repro.labeling.packing import (
    COUNT_BITS,
    DISTANCE_BITS,
    ENTRY_BYTES,
    pack_entry,
)

__all__ = [
    "UNREACHED",
    "HUB_SHIFT",
    "COUNT_SATURATED",
    "LabelStore",
    "LabelTable",
    "LabelView",
    "join_min_count",
    "join_min_dist",
    "join_bydist_min_count",
    "join_bydist_min_dist",
]

#: Sentinel distance for "not reached"; larger than any real distance.
#: (Re-exported by :mod:`repro.labeling.hpspc` for backward compatibility.)
UNREACHED = 1 << 60

#: Bit offset of the hub-rank field inside a packed word (= 41).
HUB_SHIFT = DISTANCE_BITS + COUNT_BITS

_DIST_MASK = (1 << DISTANCE_BITS) - 1
_COUNT_MASK = (1 << COUNT_BITS) - 1

#: A stored count of this value means "saturated — exact count in big[v]".
COUNT_SATURATED = _COUNT_MASK

Entry = tuple[int, int, int, bool]

_MAGIC = b"RPLS"
_VERSION = 1


def _pack(hub: int, dist: int, count: int) -> int:
    """Pack one entry, saturating the count (exact value goes to ``big``)."""
    return pack_entry(hub, dist, count, saturate=True)


class LabelStore:
    """One direction's label table (all vertices) in packed form."""

    __slots__ = ("packed", "canon", "big", "_maps", "_bydist", "_dists",
                 "_frozen", "_epoch", "_owner", "_stale", "_cols")

    def __init__(self, n: int = 0) -> None:
        self.packed: list[array] = [array("Q") for _ in range(n)]
        self.canon: list[int] = [0] * n
        self.big: list[dict[int, int] | None] = [None] * n
        self._maps: list[dict[int, tuple[int, int, bool]]] | None = None
        self._bydist: list[list[tuple[int, int, int]]] | None = None
        self._dists: list[dict[int, int]] | None = None
        # Snapshot support: a frozen store rejects mutation; a live store
        # that has been snapshotted copy-on-writes per vertex (``_owner[v]``
        # records the epoch in which the writer last took exclusive
        # ownership of v's structures; ``_owner is None`` = never
        # snapshotted, the zero-overhead common case).
        self._frozen = False
        self._epoch = 0
        self._owner: list[int] | None = None
        # Deferred-repair tombstones: hub positions whose fingerprints are
        # known-stale (their edges were deleted but DECCNT repair has not
        # run yet).  In-memory only — never serialized; a store rebuilt
        # from bytes is by construction clean.
        self._stale: frozenset[int] = frozenset()
        # Lazily built flat-column NumPy projection for the bulk-query
        # kernels (repro.core.bulk.StoreColumns).  Content-immutable once
        # built, so snapshots share it; any label mutation drops it.
        self._cols = None

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_lists(cls, tables: Sequence[Sequence[Entry]]) -> LabelStore:
        """Pack a list-of-tuple-lists label table (the seed representation).

        Builds the join maps in the same pass, so a freshly built index
        pays no extra query-time materialization.
        """
        store = cls(len(tables))
        packed = store.packed
        canon = store.canon
        big = store.big
        maps: list[dict[int, tuple[int, int, bool]]] = []
        for v, entries in enumerate(tables):
            arr = packed[v]
            bits = 0
            vmap: dict[int, tuple[int, int, bool]] = {}
            for i, (hub, dist, count, flag) in enumerate(entries):
                arr.append(_pack(hub, dist, count))
                flag = bool(flag)
                if flag:
                    bits |= 1 << i
                if count >= COUNT_SATURATED:
                    b = big[v]
                    if b is None:
                        b = big[v] = {}
                    b[hub] = count
                vmap[hub] = (dist, count, flag)
            canon[v] = bits
            maps.append(vmap)
        store._maps = maps
        return store

    def to_lists(self) -> list[list[Entry]]:
        """The seed tuple-list representation (for legacy kernels/tests)."""
        return [self.entries(v) for v in range(len(self.packed))]

    def copy(self) -> LabelStore:
        """Independent deep copy (join maps rebuilt lazily; the copy of a
        frozen snapshot is a normal mutable store)."""
        clone = LabelStore(0)
        clone.packed = [array("Q", arr) for arr in self.packed]
        clone.canon = list(self.canon)
        clone.big = [dict(b) if b else None for b in self.big]
        return clone

    # ------------------------------------------------------------------
    # Snapshots (copy-on-write at per-vertex granularity)
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """Whether this store is an immutable snapshot."""
        return self._frozen

    def snapshot(self) -> LabelStore:
        """An immutable snapshot of the current state.

        The snapshot shares every per-vertex structure (packed array,
        overflow table, resident accelerators) with this store; only the
        top-level vertex-indexed lists are copied, so taking one is O(n)
        pointer copies with **no** label data copied.  Afterwards the
        live store is copy-on-write: the first mutation of a vertex since
        the snapshot clones that vertex's structures, so the snapshot
        keeps answering from the state it captured.

        Must be called from the (single) mutating thread — it reads the
        vertex lists non-atomically.  The returned store rejects every
        mutation with :class:`~repro.errors.FrozenSnapshotError`; reads,
        lazy accelerator builds, and serialization all work.
        """
        snap = LabelStore(0)
        snap.packed = list(self.packed)
        snap.canon = list(self.canon)
        snap.big = list(self.big)
        if self._maps is not None:
            snap._maps = list(self._maps)
        if self._dists is not None:
            snap._dists = list(self._dists)
        if self._bydist is not None:
            snap._bydist = list(self._bydist)
        snap._frozen = True
        snap._stale = self._stale
        # The column projection describes exactly the captured state (it
        # is an eager copy of the packed words), so the snapshot can keep
        # serving from it; the live store drops its own reference on the
        # next mutation.
        snap._cols = self._cols
        if not self._frozen:
            # Invalidate all per-vertex ownership: everything is shared
            # with the new snapshot until the writer touches it again.
            self._epoch += 1
            if self._owner is None:
                self._owner = [0] * len(self.packed)
        return snap

    def _own(self, v: int) -> None:
        """Copy-on-write guard: make vertex ``v``'s structures exclusively
        ours before an in-place mutation (no-op when no snapshot shares
        them)."""
        if self._frozen:
            raise FrozenSnapshotError(
                "label store snapshot is frozen; apply updates to the "
                "live store it was taken from"
            )
        # Invalidate before the ownership early-return: the caller is
        # about to mutate v whether or not a copy-on-write is needed.
        self._cols = None
        owner = self._owner
        if owner is None or owner[v] == self._epoch:
            return
        owner[v] = self._epoch
        self.packed[v] = array("Q", self.packed[v])
        b = self.big[v]
        if b is not None:
            self.big[v] = dict(b)
        if self._maps is not None:
            self._maps[v] = dict(self._maps[v])
        if self._dists is not None:
            self._dists[v] = dict(self._dists[v])
        if self._bydist is not None:
            self._bydist[v] = list(self._bydist[v])

    def _claim(self, v: int) -> None:
        """Ownership without copying — for wholesale replacement of ``v``'s
        structures, where copying the old ones would be wasted work."""
        if self._frozen:
            raise FrozenSnapshotError(
                "label store snapshot is frozen; apply updates to the "
                "live store it was taken from"
            )
        self._cols = None
        if self._owner is not None:
            self._owner[v] = self._epoch

    def cache_columns(self, cols):
        """Install the bulk-query column projection for this store.

        The projection (:class:`repro.core.bulk.StoreColumns`) is a
        *cache* derived from the current packed words, not label state,
        so installing one is permitted on frozen snapshots — that is
        where bulk queries run.  Every mutating path drops it through
        :meth:`_own`/:meth:`_claim`; this is the only sanctioned way to
        set it from outside the store.
        """
        self._cols = cols
        return cols

    # ------------------------------------------------------------------
    # Deferred-repair tombstones
    # ------------------------------------------------------------------
    @property
    def stale_hubs(self) -> frozenset[int]:
        """Hub positions whose fingerprints are pending DECCNT repair.

        Non-empty between a deferred edge deletion and the completion of
        its background repair; queries against a store with tombstones
        raise :class:`~repro.errors.StaleLabelError` (the serving
        engine's overlay answers from the last clean snapshot instead).
        """
        return self._stale

    def tombstone_hubs(self, positions: Iterable[int]) -> None:
        """Mark hub positions as pending repair (idempotent union)."""
        if self._frozen:
            raise FrozenSnapshotError(
                "label store snapshot is frozen; apply updates to the "
                "live store it was taken from"
            )
        self._stale = self._stale | frozenset(positions)

    def clear_tombstones(self) -> None:
        """Declare all fingerprints repaired (or rebuilt) — queries may
        resume against this store."""
        if self._frozen:
            raise FrozenSnapshotError(
                "label store snapshot is frozen; apply updates to the "
                "live store it was taken from"
            )
        self._stale = frozenset()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.packed)

    def entry_count(self, v: int) -> int:
        return len(self.packed[v])

    def total_entries(self) -> int:
        return sum(len(arr) for arr in self.packed)

    def nbytes(self) -> int:
        """Actual bytes held by the packed words (the Figure 9(b) metric)."""
        return self.total_entries() * ENTRY_BYTES

    def decode(self, v: int, i: int) -> Entry:
        """Entry ``i`` of vertex ``v`` as a ``(hub, dist, count, flag)``
        tuple with the *exact* count."""
        e = self.packed[v][i]
        hub = e >> HUB_SHIFT
        count = e & _COUNT_MASK
        if count == COUNT_SATURATED:
            b = self.big[v]
            if b is not None:
                count = b.get(hub, count)
        return (hub, (e >> COUNT_BITS) & _DIST_MASK, count,
                bool(self.canon[v] >> i & 1))

    def entries(self, v: int) -> list[Entry]:
        """All entries of ``v`` as exact tuples (decoded copy)."""
        bits = self.canon[v]
        big = self.big[v]
        out: list[Entry] = []
        for i, e in enumerate(self.packed[v]):
            hub = e >> HUB_SHIFT
            count = e & _COUNT_MASK
            if count == COUNT_SATURATED and big is not None:
                count = big.get(hub, count)
            out.append((hub, (e >> COUNT_BITS) & _DIST_MASK, count,
                        bool(bits >> i & 1)))
        return out

    def hubs(self, v: int) -> list[int]:
        """Hub ranks of ``v``'s entries, in storage order."""
        return [e >> HUB_SHIFT for e in self.packed[v]]

    def hub_index(self, v: int, hub: int) -> int:
        """Index of ``hub`` in ``v``'s sorted entries, or ``-1`` — a plain
        bisect over the packed words (hub bits are the most significant)."""
        arr = self.packed[v]
        i = bisect_left(arr, hub << HUB_SHIFT)
        if i < len(arr) and arr[i] >> HUB_SHIFT == hub:
            return i
        return -1

    def get(self, v: int, hub: int) -> Entry | None:
        """Entry of ``hub`` at vertex ``v``, or ``None``."""
        i = self.hub_index(v, hub)
        return self.decode(v, i) if i >= 0 else None

    # ------------------------------------------------------------------
    # Join maps (query accelerator)
    # ------------------------------------------------------------------
    def ensure_maps(self) -> list[dict[int, tuple[int, int, bool]]]:
        """Materialize (once) the per-vertex ``{hub: (dist, count,
        canonical)}`` maps.

        Kept in sync incrementally by every sorted mutation; raw view
        mutations (which may create structurally invalid states on
        purpose) refresh the touched vertex's map wholesale.
        """
        if self._maps is None:
            self._maps = [self._build_map(v) for v in range(len(self.packed))]
        return self._maps

    def _build_map(self, v: int) -> dict[int, tuple[int, int, bool]]:
        big = self.big[v]
        bits = self.canon[v]
        vmap: dict[int, tuple[int, int, bool]] = {}
        for i, e in enumerate(self.packed[v]):
            hub = e >> HUB_SHIFT
            count = e & _COUNT_MASK
            if count == COUNT_SATURATED and big is not None:
                count = big.get(hub, count)
            vmap[hub] = ((e >> COUNT_BITS) & _DIST_MASK, count,
                         bool(bits >> i & 1))
        return vmap

    def _refresh_map(self, v: int) -> None:
        if self._maps is not None:
            self._maps[v] = self._build_map(v)
        m = None
        if self._bydist is not None or self._dists is not None:
            m = self._maps[v] if self._maps is not None else self._build_map(v)
        if self._bydist is not None:
            self._bydist[v] = sorted(
                (dc[0], h, dc[1]) for h, dc in m.items()
            )
        if self._dists is not None:
            self._dists[v] = {h: dc[0] for h, dc in m.items()}

    def ensure_dists(self) -> list[dict[int, int]]:
        """Materialize (once) per-vertex ``{hub: dist}`` probe dicts.

        Probing an int value instead of the full ``(dist, count, flag)``
        tuple shaves a subscript off every join hit; the query kernels
        fall back to :attr:`_maps` for counts only on improve/tie.
        """
        if self._dists is None:
            maps = self.ensure_maps()
            self._dists = [
                {h: dc[0] for h, dc in m.items()} for m in maps
            ]
        return self._dists

    # ------------------------------------------------------------------
    # Distance-ordered views (early-exit join accelerator)
    # ------------------------------------------------------------------
    def ensure_bydist(self) -> list[list[tuple[int, int, int]]]:
        """Materialize (once) per-vertex ``[(dist, hub, exact_count)]``
        lists sorted ascending by distance; maintained incrementally like
        the hub maps."""
        if self._bydist is None:
            maps = self.ensure_maps()
            self._bydist = [
                sorted((dc[0], h, dc[1]) for h, dc in m.items())
                for m in maps
            ]
        return self._bydist

    def _bydist_replace(
        self, v: int, old: tuple[int, int, int] | None,
        new: tuple[int, int, int] | None,
    ) -> None:
        """Swap one ``(dist, hub, count)`` element of the sorted-by-dist
        view (``None`` old = pure insert, ``None`` new = pure delete)."""
        lst = self._bydist[v]
        if old is not None:
            i = bisect_left(lst, old[:2])
            # (dist, hub) is unique, so lst[i] is the element (its count
            # may differ from `old`'s only in corrupt states).
            if i < len(lst) and lst[i][:2] == old[:2]:
                del lst[i]
        if new is not None:
            i = bisect_left(lst, new)
            lst.insert(i, new)

    def _exact_at(self, v: int, i: int) -> tuple[int, int, int]:
        """``(dist, hub, exact_count)`` of entry ``i`` (bydist element)."""
        e = self.packed[v][i]
        hub = e >> HUB_SHIFT
        count = e & _COUNT_MASK
        if count == COUNT_SATURATED:
            b = self.big[v]
            if b is not None:
                count = b.get(hub, count)
        return ((e >> COUNT_BITS) & _DIST_MASK, hub, count)

    # ------------------------------------------------------------------
    # Mutation (sorted fast paths — used by dynamic maintenance)
    # ------------------------------------------------------------------
    def _set_big(self, v: int, hub: int, count: int) -> None:
        b = self.big[v]
        if count >= COUNT_SATURATED:
            if b is None:
                b = self.big[v] = {}
            b[hub] = count
        elif b is not None:
            b.pop(hub, None)

    def set_at(self, v: int, i: int, hub: int, dist: int, count: int,
               flag: bool) -> None:
        """Overwrite entry ``i`` in place (hub may stay or change)."""
        self._own(v)
        old_hub = self.packed[v][i] >> HUB_SHIFT
        if self._bydist is not None:
            self._bydist_replace(
                v, self._exact_at(v, i), (dist, hub, count)
            )
        self.packed[v][i] = _pack(hub, dist, count)
        if flag:
            self.canon[v] |= 1 << i
        else:
            self.canon[v] &= ~(1 << i)
        if old_hub != hub:
            b = self.big[v]
            if b is not None:
                b.pop(old_hub, None)
            self._set_big(v, hub, count)
            self._refresh_map(v)
        else:
            self._set_big(v, hub, count)
            if self._maps is not None:
                self._maps[v][hub] = (dist, count, flag)
            if self._dists is not None:
                self._dists[v][hub] = dist

    def insert_sorted(self, v: int, hub: int, dist: int, count: int,
                      flag: bool) -> int:
        """Insert an entry at its sorted position; returns the index.

        The hub must not already be present (callers upsert through
        :meth:`hub_index` first).
        """
        self._own(v)
        arr = self.packed[v]
        word = _pack(hub, dist, count)
        i = bisect_left(arr, word)
        arr.insert(i, word)
        bits = self.canon[v]
        low = bits & ((1 << i) - 1)
        self.canon[v] = ((bits >> i) << (i + 1)) | (int(flag) << i) | low
        self._set_big(v, hub, count)
        if self._maps is not None:
            self._maps[v][hub] = (dist, count, flag)
        if self._dists is not None:
            self._dists[v][hub] = dist
        if self._bydist is not None:
            self._bydist_replace(v, None, (dist, hub, count))
        return i

    def delete_at(self, v: int, i: int) -> None:
        """Remove entry ``i``."""
        self._own(v)
        arr = self.packed[v]
        hub = arr[i] >> HUB_SHIFT
        if self._bydist is not None:
            self._bydist_replace(v, self._exact_at(v, i), None)
        del arr[i]
        bits = self.canon[v]
        low = bits & ((1 << i) - 1)
        self.canon[v] = ((bits >> (i + 1)) << i) | low
        b = self.big[v]
        if b is not None:
            b.pop(hub, None)
        if self._maps is not None:
            self._maps[v].pop(hub, None)
        if self._dists is not None:
            self._dists[v].pop(hub, None)

    def replace_vertex(self, v: int, entries: Iterable[Entry]) -> None:
        """Wholesale replacement of ``v``'s entries (any order accepted)."""
        self._claim(v)
        arr = array("Q")
        bits = 0
        self.big[v] = None
        for i, (hub, dist, count, flag) in enumerate(entries):
            arr.append(_pack(hub, dist, count))
            if flag:
                bits |= 1 << i
            if count >= COUNT_SATURATED:
                self._set_big(v, hub, count)
        self.packed[v] = arr
        self.canon[v] = bits
        self._refresh_map(v)

    def add_vertex(self, entries: Iterable[Entry] = ()) -> int:
        """Append storage for one new vertex; returns its id."""
        if self._frozen:
            raise FrozenSnapshotError(
                "label store snapshot is frozen; apply updates to the "
                "live store it was taken from"
            )
        v = len(self.packed)
        self._cols = None
        self.packed.append(array("Q"))
        self.canon.append(0)
        self.big.append(None)
        if self._owner is not None:
            # The new vertex exists only in the live store's lists, so the
            # writer owns it outright.
            self._owner.append(self._epoch)
        if self._maps is not None:
            self._maps.append({})
        if self._dists is not None:
            self._dists.append({})
        if self._bydist is not None:
            self._bydist.append([])
        if entries:
            self.replace_vertex(v, entries)
        return v

    # ------------------------------------------------------------------
    # Raw mutation (view support — may create invalid states on purpose)
    # ------------------------------------------------------------------
    def append_raw(self, v: int, entry: Entry) -> None:
        """Append without any sort/duplicate check (corruption tests)."""
        self._own(v)
        hub, dist, count, flag = entry
        i = len(self.packed[v])
        self.packed[v].append(_pack(hub, dist, count))
        if flag:
            self.canon[v] |= 1 << i
        self._set_big(v, hub, count)
        self._refresh_map(v)

    def insert_raw(self, v: int, i: int, entry: Entry) -> None:
        """Positional insert without sort checks."""
        self._own(v)
        hub, dist, count, flag = entry
        arr = self.packed[v]
        i = max(0, min(i, len(arr)))
        arr.insert(i, _pack(hub, dist, count))
        bits = self.canon[v]
        low = bits & ((1 << i) - 1)
        self.canon[v] = ((bits >> i) << (i + 1)) | (int(flag) << i) | low
        self._set_big(v, hub, count)
        self._refresh_map(v)

    def reverse(self, v: int) -> None:
        """Reverse ``v``'s entry order (corruption tests)."""
        self._own(v)
        arr = self.packed[v]
        arr.reverse()
        k = len(arr)
        bits = self.canon[v]
        out = 0
        for i in range(k):
            if bits >> i & 1:
                out |= 1 << (k - 1 - i)
        self.canon[v] = out

    # ------------------------------------------------------------------
    # Persistence — one memcpy per vertex instead of per-entry structs
    # ------------------------------------------------------------------
    def _append_vertex_bytes(self, v: int, chunks: list[bytes]) -> None:
        """Append vertex ``v``'s wire segment (one memcpy of the packed
        words plus flag/overflow trailers) to ``chunks``."""
        arr = self.packed[v]
        if sys.byteorder != "little":  # pragma: no cover
            arr = array("Q", arr)
            arr.byteswap()
        k = len(arr)
        chunks.append(k.to_bytes(4, "little"))
        chunks.append(arr.tobytes())
        chunks.append(self.canon[v].to_bytes((k + 7) // 8 or 1, "little"))
        b = self.big[v] or {}
        chunks.append(len(b).to_bytes(4, "little"))
        for hub, count in sorted(b.items()):
            if count >= (1 << 64):
                raise SerializationError(
                    f"count {count} exceeds 64-bit storage"
                )
            chunks.append(hub.to_bytes(4, "little"))
            chunks.append(count.to_bytes(8, "little"))

    def vertex_to_bytes(self, v: int) -> bytes:
        """One vertex's labels in the :meth:`to_bytes` wire layout — the
        unit of the incremental checkpoints in :mod:`repro.persist`."""
        chunks: list[bytes] = []
        self._append_vertex_bytes(v, chunks)
        return b"".join(chunks)

    def to_bytes(self) -> bytes:
        """Serialize the table; packed words are dumped verbatim."""
        n = len(self.packed)
        chunks = [_MAGIC, bytes([_VERSION]), n.to_bytes(4, "little")]
        for v in range(n):
            self._append_vertex_bytes(v, chunks)
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, blob: bytes) -> LabelStore:
        """Inverse of :meth:`to_bytes` (join maps stay lazy)."""
        store, consumed = cls.from_bytes_prefix(blob)
        if consumed != len(blob):
            raise SerializationError("trailing bytes in label store blob")
        return store

    @classmethod
    def from_bytes_prefix(cls, blob: bytes) -> tuple[LabelStore, int]:
        """Decode one self-describing store blob from the front of
        ``blob``; returns ``(store, bytes_consumed)``."""
        view = memoryview(blob)
        if len(blob) < 9 or bytes(view[:4]) != _MAGIC:
            raise SerializationError("not a packed label store blob")
        if view[4] != _VERSION:
            raise SerializationError(
                f"unsupported label store version {view[4]}"
            )
        n = int.from_bytes(view[5:9], "little")
        store = cls(n)
        off = 9
        try:
            for v in range(n):
                off = store.set_vertex_from_bytes(v, view, off)
            if off > len(blob):
                raise SerializationError("truncated label store blob")
        except ValueError as exc:  # pragma: no cover - defensive
            raise SerializationError(
                f"truncated label store blob: {exc}"
            ) from exc
        return store, off

    def set_vertex_from_bytes(self, v: int, view, off: int = 0) -> int:
        """Replace vertex ``v``'s labels from a :meth:`vertex_to_bytes`
        wire segment at ``view[off:]``; returns the offset just past it.

        Takes wholesale ownership of ``v`` (copy-on-write aware), so a
        snapshot taken before the patch keeps its captured labels.  Any
        resident query accelerators for ``v`` are dropped rather than
        patched — they rebuild lazily.
        """
        self._claim(v)
        k = int.from_bytes(view[off:off + 4], "little")
        off += 4
        nbytes = k * ENTRY_BYTES
        if off + nbytes > len(view):
            raise SerializationError("truncated label store blob")
        arr = array("Q")
        arr.frombytes(view[off:off + nbytes])
        if sys.byteorder != "little":  # pragma: no cover
            arr.byteswap()
        self.packed[v] = arr
        off += nbytes
        cbytes = (k + 7) // 8 or 1
        self.canon[v] = int.from_bytes(view[off:off + cbytes], "little")
        off += cbytes
        nbig = int.from_bytes(view[off:off + 4], "little")
        off += 4
        big: dict[int, int] | None = None
        if nbig:
            if off + 12 * nbig > len(view):
                raise SerializationError("truncated label store blob")
            big = {}
            for _ in range(nbig):
                hub = int.from_bytes(view[off:off + 4], "little")
                big[hub] = int.from_bytes(
                    view[off + 4:off + 12], "little"
                )
                off += 12
        self.big[v] = big
        if self._maps is not None:
            self._maps[v] = {
                hub: (dist, count, flag)
                for hub, dist, count, flag in self.entries(v)
            }
        if self._dists is not None:
            self._dists = None
        if self._bydist is not None:
            self._bydist = None
        return off

    # ------------------------------------------------------------------
    def eq_entries(self, other: LabelStore) -> bool:
        """Exact logical equality (entries, flags, exact counts)."""
        if len(self.packed) != len(other.packed):
            return False
        for v in range(len(self.packed)):
            if (self.packed[v] != other.packed[v]
                    or self.canon[v] != other.canon[v]
                    or (self.big[v] or {}) != (other.big[v] or {})):
                return False
        return True


# ---------------------------------------------------------------------------
# Merge-join kernels
# ---------------------------------------------------------------------------


def join_min_count(
    ma: dict[int, tuple[int, int]], mb: dict[int, tuple[int, int]]
) -> tuple[int, int]:
    """Equations (1)–(2) over two hub maps: ``(distance, count)`` with
    ``distance == UNREACHED`` when no hub is shared.

    Iterates the smaller side and probes the larger at C dict speed —
    the measured-fastest CPython join for hub-label sizes (see module
    docstring).
    """
    if len(ma) > len(mb):
        ma, mb = mb, ma
    best = UNREACHED
    total = 0
    get = mb.get
    for hub, dc in ma.items():
        other = get(hub)
        if other is not None:
            d = dc[0] + other[0]
            if d < best:
                best = d
                total = dc[1] * other[1]
            elif d == best:
                total += dc[1] * other[1]
    return best, total


def join_bydist_min_count(
    items_a: list[tuple[int, int, int]],
    map_b: dict[int, tuple[int, int, bool]],
) -> tuple[int, int]:
    """Early-exit variant of :func:`join_min_count`: ``items_a`` is one
    side's distance-sorted ``(dist, hub, count)`` view, probed against the
    other side's hub map.  Once the best sum ``B`` is known, any element
    with ``dist > B`` can neither improve nor tie it (probe-side
    distances are >= 0), so the scan stops there."""
    best = UNREACHED
    total = 0
    get = map_b.get
    for t in items_a:
        d_a = t[0]
        if d_a > best:
            break
        other = get(t[1])
        if other is not None:
            d = d_a + other[0]
            if d < best:
                best = d
                total = t[2] * other[1]
            elif d == best:
                total += t[2] * other[1]
    return best, total


def join_bydist_min_dist(
    items_a: list[tuple[int, int, int]],
    dists_b: dict[int, int],
) -> int:
    """Distance-only early-exit join: ``items_a`` is a distance-sorted
    ``(dist, hub, count)`` view, ``dists_b`` a ``{hub: dist}`` probe
    dict."""
    best = UNREACHED
    get = dists_b.get
    for d_a, h, _c in items_a:
        if d_a > best:
            break
        other = get(h)
        if other is not None:
            d = d_a + other
            if d < best:
                best = d
    return best


def join_min_dist(
    ma: dict[int, tuple[int, int]], mb: dict[int, tuple[int, int]]
) -> int:
    """Distance-only variant of :func:`join_min_count`."""
    if len(ma) > len(mb):
        ma, mb = mb, ma
    best = UNREACHED
    get = mb.get
    for hub, dc in ma.items():
        other = get(hub)
        if other is not None:
            d = dc[0] + other[0]
            if d < best:
                best = d
    return best


# ---------------------------------------------------------------------------
# List-compatible facades
# ---------------------------------------------------------------------------


class LabelView:
    """Mutable list-like view of one vertex's labels.

    Reads decode packed entries to the seed's ``(hub, dist, count,
    canonical)`` tuples; writes go through the store (including writes
    that deliberately corrupt ordering, for ``validate`` tests).
    """

    __slots__ = ("_store", "_v")

    def __init__(self, store: LabelStore, v: int) -> None:
        self._store = store
        self._v = v

    def hub_index(self, hub: int) -> int:
        """Sorted position of ``hub`` (or ``-1``) — direct packed bisect."""
        return self._store.hub_index(self._v, hub)

    def __len__(self) -> int:
        return len(self._store.packed[self._v])

    def __getitem__(self, i):
        if isinstance(i, slice):
            return self._store.entries(self._v)[i]
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("label index out of range")
        return self._store.decode(self._v, i)

    def __setitem__(self, i, value) -> None:
        if isinstance(i, slice):
            entries = self._store.entries(self._v)
            entries[i] = value
            self._store.replace_vertex(self._v, entries)
            return
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("label index out of range")
        hub, dist, count, flag = value
        self._store.set_at(self._v, i, hub, dist, count, bool(flag))

    def __delitem__(self, i) -> None:
        if isinstance(i, slice):
            entries = self._store.entries(self._v)
            del entries[i]
            self._store.replace_vertex(self._v, entries)
            return
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("label index out of range")
        self._store.delete_at(self._v, i)

    def insert(self, i: int, value: Entry) -> None:
        self._store.insert_raw(self._v, i, value)

    def append(self, value: Entry) -> None:
        self._store.append_raw(self._v, value)

    def reverse(self) -> None:
        self._store.reverse(self._v)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._store.entries(self._v))

    def __contains__(self, value) -> bool:
        return value in self._store.entries(self._v)

    def __eq__(self, other) -> bool:
        if isinstance(other, LabelView):
            return self._store.entries(self._v) == other._store.entries(
                other._v
            )
        if isinstance(other, list):
            return self._store.entries(self._v) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"LabelView({self._store.entries(self._v)!r})"


class LabelTable:
    """List-like view of a whole :class:`LabelStore` side
    (``table[v]`` → :class:`LabelView`)."""

    __slots__ = ("_store",)

    def __init__(self, store: LabelStore) -> None:
        self._store = store

    @property
    def store(self) -> LabelStore:
        return self._store

    def __len__(self) -> int:
        return len(self._store)

    def __getitem__(self, v: int) -> LabelView:
        if not 0 <= v < len(self._store):
            raise IndexError("vertex out of range")
        return LabelView(self._store, v)

    def __setitem__(self, v: int, entries: Iterable[Entry]) -> None:
        self._store.replace_vertex(v, entries)

    def __iter__(self) -> Iterator[LabelView]:
        for v in range(len(self._store)):
            yield LabelView(self._store, v)

    def append(self, entries: Iterable[Entry]) -> None:
        """Extend the table by one vertex (facade ``add_vertex`` support)."""
        self._store.add_vertex(list(entries))

    def __eq__(self, other) -> bool:
        if isinstance(other, LabelTable):
            return self._store.eq_entries(other._store)
        if isinstance(other, (list, tuple)):
            if len(other) != len(self._store):
                return False
            return all(
                self._store.entries(v) == list(other[v])
                for v in range(len(self._store))
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"LabelTable(n={len(self._store)})"


def coerce_store(labels) -> LabelStore:
    """Accept a :class:`LabelStore`, :class:`LabelTable`, or the seed
    list-of-tuple-lists and return a store (adopting, not copying, an
    existing store)."""
    if isinstance(labels, LabelStore):
        return labels
    if isinstance(labels, LabelTable):
        return labels.store
    return LabelStore.from_lists(labels)
