"""Dynamic maintenance for the generic HP-SPC index.

The paper's INCCNT/DECCNT (Section V) specialize dynamic 2-hop-cover
maintenance (Akiba et al. [30], D'angelo et al. [37], Qin et al. [38] in
the paper's related work) to the bipartite cycle-counting index.  This
module provides the *generic* digraph version for :class:`HPSPCIndex`, so
the HP-SPC baseline enjoys the same update model as CSC:

* :func:`insert_edge` — resumed counting BFS from each affected hub
  (hubs of ``Lin(a)`` forward from ``b``, hubs of ``Lout(b)`` backward
  from ``a``), seeded with the *label's* count (Theorem V.1), pruned by
  full-index distance queries, applying Algorithm 7's replace /
  accumulate / insert cases.
* :func:`delete_edge` — affected hubs are all vertices satisfying the
  distance conditions ``sd(v,a)+1 = sd(v,b)`` (in-side) and
  ``sd(b,u)+1 = sd(a,u)`` (out-side), computed exactly with four plain
  BFSes; each affected hub's label fingerprint is replaced by re-running
  the construction BFS (stale entries located through an inverted index).

Unlike the CSC variant there is no couple structure and no cycle-pair
special case — labels live on the original digraph with hop distances.
As in :mod:`repro.core.maintenance`, the repair passes patch the packed
label store in place and every pruning query is a merge-join over the
store's maintained hub maps (iterate the fixed hub-side map, probe the
visited vertex's map at C dict speed).
"""

from __future__ import annotations

from collections import deque

from repro.core.maintenance import STRATEGIES, UpdateStats
from repro.errors import ConfigurationError, EdgeNotFoundError
from repro.graph.traversal import INF, bfs_distances
from repro.labeling.hpspc import HPSPCIndex, UNREACHED
from repro.labeling.labelstore import HUB_SHIFT, LabelStore, join_min_dist

__all__ = ["insert_edge", "delete_edge", "ensure_inverted"]


def ensure_inverted(
    index: HPSPCIndex,
) -> tuple[list[set[int]], list[set[int]]]:
    """Build (once) inverted indexes ``hub_pos -> labeled vertices`` for an
    HP-SPC index; cached on the index object."""
    inv = index._dyn_inverted
    if inv is None:
        n = index.graph.n
        inv_in: list[set[int]] = [set() for _ in range(n)]
        inv_out: list[set[int]] = [set() for _ in range(n)]
        in_packed = index.store_in.packed
        out_packed = index.store_out.packed
        for w in range(n):
            for e in in_packed[w]:
                inv_in[e >> HUB_SHIFT].add(w)
            for e in out_packed[w]:
                inv_out[e >> HUB_SHIFT].add(w)
        inv = (inv_in, inv_out)
        index._dyn_inverted = inv
    return inv


def _canonical_map(
    store: LabelStore, v: int, limit_hub: int
) -> dict[int, int]:
    """``{hub: dist}`` over ``v``'s canonical entries with ``hub <
    limit_hub`` (strictly higher rank)."""
    maps = store._maps or store.ensure_maps()
    return {
        h: dc[0] for h, dc in maps[v].items() if h < limit_hub and dc[2]
    }


def insert_edge(
    index: HPSPCIndex, a: int, b: int, strategy: str = "redundancy"
) -> UpdateStats:
    """Insert edge ``(a, b)`` and incrementally maintain the HP-SPC index."""
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    index.graph.add_edge(a, b)
    ensure_inverted(index)
    stats = UpdateStats("insert", (a, b), strategy)
    pos = index.pos
    pa, pb = pos[a], pos[b]
    maps_in = index.store_in.ensure_maps()
    maps_out = index.store_out.ensure_maps()

    forward_seeds = {
        q: (dc[0] + 1, dc[1]) for q, dc in maps_in[a].items() if q < pb
    }
    backward_seeds = {
        q: (dc[0] + 1, dc[1]) for q, dc in maps_out[b].items() if q < pa
    }
    for q in sorted(set(forward_seeds) | set(backward_seeds)):
        stats.hubs_processed += 1
        seed = forward_seeds.get(q)
        if seed is not None:
            _pass(index, q, b, seed[0], seed[1], True, strategy, stats)
        seed = backward_seeds.get(q)
        if seed is not None:
            _pass(index, q, a, seed[0], seed[1], False, strategy, stats)
    return stats


def _pass(
    index: HPSPCIndex,
    q: int,
    start: int,
    d0: int,
    c0: int,
    forward: bool,
    strategy: str,
    stats: UpdateStats,
) -> None:
    """One resumed counting BFS from hub ``q`` (Algorithm 6, generic)."""
    graph = index.graph
    pos = index.pos
    hub_vertex = index.order[q]
    if forward:
        store = index.store_in
        side_store = index.store_out
        neighbors = graph.out_neighbors
    else:
        store = index.store_out
        side_store = index.store_in
        neighbors = graph.in_neighbors
    side_map = side_store.ensure_maps()[hub_vertex]
    full_items = [(h, dc[0]) for h, dc in side_map.items()]
    canon = {h: dc[0] for h, dc in side_map.items() if h < q and dc[2]}
    inv = ensure_inverted(index)[0 if forward else 1]
    target_maps = store.ensure_maps()

    dist: dict[int, int] = {start: d0}
    cnt: dict[int, int] = {start: c0}
    queue: deque[int] = deque((start,))
    while queue:
        w = queue.popleft()
        d_w = dist[w]
        stats.vertices_visited += 1
        # Full-index pruning query: Lout(hub)'s hubs all rank at or above
        # q, so probing w's map covers exactly the seed's <=q prefix scan.
        d_query = UNREACHED
        get = target_maps[w].get
        for h2, od in full_items:
            t = get(h2)
            if t is not None:
                d2 = od + t[0]
                if d2 < d_query:
                    d_query = d2
        if d_w > d_query:
            continue
        _update_entry(
            index, store, inv, w, q, d_w, cnt[w], canon, forward,
            strategy, stats,
        )
        d_next = d_w + 1
        c_w = cnt[w]
        for u in neighbors(w):
            if pos[u] > q:
                d_u = dist.get(u)
                if d_u is None:
                    dist[u] = d_next
                    cnt[u] = c_w
                    queue.append(u)
                elif d_u == d_next:
                    cnt[u] += c_w


def _update_entry(
    index: HPSPCIndex,
    store: LabelStore,
    inv: list[set[int]],
    w: int,
    q: int,
    d: int,
    c: int,
    hub_canon: dict[int, int],
    forward: bool,
    strategy: str,
    stats: UpdateStats,
) -> None:
    # Canonical distance via strictly higher canonical hubs (hub_canon's
    # keys all rank above q by construction), for the flag.
    d_canon = UNREACHED
    get = (store._maps or store.ensure_maps())[w].get
    for h2, od in hub_canon.items():
        t = get(h2)
        if t is not None and t[2]:
            d2 = od + t[0]
            if d2 < d_canon:
                d_canon = d2
    flag = d_canon > d
    i = store.hub_index(w, q)
    if i >= 0:
        _q, d_old, c_old, _f_old = store.decode(w, i)
        if d < d_old:
            store.set_at(w, i, q, d, c, flag)
            stats.entries_updated += 1
            if strategy == "minimality":
                _clean_vertex(index, w, forward, stats)
        elif d == d_old:
            store.set_at(w, i, q, d, c_old + c, flag)
            stats.entries_updated += 1
    else:
        store.insert_sorted(w, q, d, c, flag)
        inv[q].add(w)
        stats.entries_added += 1
        if strategy == "minimality":
            _clean_vertex(index, w, forward, stats)


def _query_pair(index: HPSPCIndex, s: int, t: int) -> int:
    """Full-label distance query (internal; avoids float inf)."""
    maps_o = index.store_out.ensure_maps()
    maps_i = index.store_in.ensure_maps()
    return join_min_dist(maps_o[s], maps_i[t])


def _clean_vertex(
    index: HPSPCIndex, w: int, forward: bool, stats: UpdateStats
) -> None:
    """Algorithm 8 on the generic index."""
    inv_in, inv_out = ensure_inverted(index)
    order = index.order
    if forward:
        store = index.store_in
        entries = store.entries(w)
        keep = []
        for entry in entries:
            q2, d2, _c2, _f2 = entry
            if d2 > _query_pair(index, order[q2], w):
                inv_in[q2].discard(w)
                stats.entries_removed += 1
            else:
                keep.append(entry)
        if len(keep) != len(entries):
            store.replace_vertex(w, keep)
        hub_w = index.pos[w]
        other = index.store_out
        for v in list(inv_out[hub_w]):
            i = other.hub_index(v, hub_w)
            if i < 0:
                inv_out[hub_w].discard(v)
                continue
            if other.decode(v, i)[1] > _query_pair(index, v, w):
                other.delete_at(v, i)
                inv_out[hub_w].discard(v)
                stats.entries_removed += 1
    else:
        store = index.store_out
        entries = store.entries(w)
        keep = []
        for entry in entries:
            q2, d2, _c2, _f2 = entry
            if d2 > _query_pair(index, w, order[q2]):
                inv_out[q2].discard(w)
                stats.entries_removed += 1
            else:
                keep.append(entry)
        if len(keep) != len(entries):
            store.replace_vertex(w, keep)
        hub_w = index.pos[w]
        other = index.store_in
        for v in list(inv_in[hub_w]):
            i = other.hub_index(v, hub_w)
            if i < 0:
                inv_in[hub_w].discard(v)
                continue
            if other.decode(v, i)[1] > _query_pair(index, w, v):
                other.delete_at(v, i)
                inv_in[hub_w].discard(v)
                stats.entries_removed += 1


def delete_edge(index: HPSPCIndex, a: int, b: int) -> UpdateStats:
    """Delete edge ``(a, b)`` and repair the HP-SPC index."""
    graph = index.graph
    if not graph.has_edge(a, b):
        raise EdgeNotFoundError(a, b)
    d_to_a = bfs_distances(graph, a, reverse=True)
    d_to_b = bfs_distances(graph, b, reverse=True)
    d_from_a = bfs_distances(graph, a)
    d_from_b = bfs_distances(graph, b)
    graph.remove_edge(a, b)
    aff_in = {
        v
        for v in graph.vertices()
        if d_to_b[v] is not INF and d_to_a[v] + 1 == d_to_b[v]
    }
    aff_out = {
        u
        for u in graph.vertices()
        if d_from_a[u] is not INF and d_from_b[u] + 1 == d_from_a[u]
    }
    ensure_inverted(index)
    stats = UpdateStats("delete", (a, b))
    stats.details["affected_in_hubs"] = len(aff_in)
    stats.details["affected_out_hubs"] = len(aff_out)
    pos = index.pos
    for h in sorted(aff_in | aff_out, key=lambda v: pos[v]):
        stats.hubs_processed += 1
        if h in aff_in:
            _repair_hub(index, h, True, stats)
        if h in aff_out:
            _repair_hub(index, h, False, stats)
    return stats


def _repair_hub(
    index: HPSPCIndex, h: int, forward: bool, stats: UpdateStats
) -> None:
    """Re-run the construction BFS for hub ``h`` and replace its
    fingerprint (fresh upserts + inverted-index stale removal)."""
    graph = index.graph
    pos = index.pos
    ph = pos[h]
    inv_in, inv_out = ensure_inverted(index)
    if forward:
        target = index.store_in
        inv = inv_in
        neighbors = graph.out_neighbors
        hub_dist = _canonical_map(index.store_out, h, ph)
    else:
        target = index.store_out
        inv = inv_out
        neighbors = graph.in_neighbors
        hub_dist = _canonical_map(index.store_in, h, ph)
    target_maps = target.ensure_maps()
    hub_items = list(hub_dist.items())

    dist: dict[int, int] = {h: 0}
    cnt: dict[int, int] = {h: 1}
    queue: deque[int] = deque((h,))
    fresh: dict[int, tuple[int, int, bool]] = {}
    while queue:
        w = queue.popleft()
        d_w = dist[w]
        stats.vertices_visited += 1
        # Canonical pruning query, flipped into a join over the hub-side
        # canonical map (do not shadow the hub argument ``h``).
        d_via = UNREACHED
        get = target_maps[w].get
        for h2, hd in hub_items:
            t = get(h2)
            if t is not None and t[2]:
                d2 = hd + t[0]
                if d2 < d_via:
                    d_via = d2
        if d_via < d_w:
            continue
        fresh[w] = (d_w, cnt[w], d_via > d_w)
        d_next = d_w + 1
        c_w = cnt[w]
        for u in neighbors(w):
            if pos[u] > ph:
                d_u = dist.get(u)
                if d_u is None:
                    dist[u] = d_next
                    cnt[u] = c_w
                    queue.append(u)
                elif d_u == d_next:
                    cnt[u] += c_w

    stale = inv[ph] - fresh.keys()
    for w, (d, c, flag) in fresh.items():
        i = target.hub_index(w, ph)
        if i >= 0:
            if target.decode(w, i)[1:] != (d, c, flag):
                target.set_at(w, i, ph, d, c, flag)
                stats.entries_updated += 1
        else:
            target.insert_sorted(w, ph, d, c, flag)
            inv[ph].add(w)
            stats.entries_added += 1
    for w in stale:
        i = target.hub_index(w, ph)
        if i >= 0:
            target.delete_at(w, i)
            stats.entries_removed += 1
        inv[ph].discard(w)
