"""Dynamic maintenance for the generic HP-SPC index.

The paper's INCCNT/DECCNT (Section V) specialize dynamic 2-hop-cover
maintenance (Akiba et al. [30], D'angelo et al. [37], Qin et al. [38] in
the paper's related work) to the bipartite cycle-counting index.  This
module provides the *generic* digraph version for :class:`HPSPCIndex`, so
the HP-SPC baseline enjoys the same update model as CSC:

* :func:`insert_edge` — resumed counting BFS from each affected hub
  (hubs of ``Lin(a)`` forward from ``b``, hubs of ``Lout(b)`` backward
  from ``a``), seeded with the *label's* count (Theorem V.1), pruned by
  full-index distance queries, applying Algorithm 7's replace /
  accumulate / insert cases.
* :func:`delete_edge` — affected hubs are all vertices satisfying the
  distance conditions ``sd(v,a)+1 = sd(v,b)`` (in-side) and
  ``sd(b,u)+1 = sd(a,u)`` (out-side), computed exactly with four plain
  BFSes; each affected hub's label fingerprint is replaced by re-running
  the construction BFS (stale entries located through an inverted index).

Unlike the CSC variant there is no couple structure and no cycle-pair
special case — labels live on the original digraph with hop distances.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque

from repro.core.maintenance import STRATEGIES, UpdateStats
from repro.errors import EdgeNotFoundError
from repro.graph.traversal import INF, bfs_distances
from repro.labeling.hpspc import HPSPCIndex, UNREACHED

__all__ = ["insert_edge", "delete_edge", "ensure_inverted"]


def ensure_inverted(
    index: HPSPCIndex,
) -> tuple[list[set[int]], list[set[int]]]:
    """Build (once) inverted indexes ``hub_pos -> labeled vertices`` for an
    HP-SPC index; cached on the index object."""
    inv = index._dyn_inverted
    if inv is None:
        n = index.graph.n
        inv_in: list[set[int]] = [set() for _ in range(n)]
        inv_out: list[set[int]] = [set() for _ in range(n)]
        for w in range(n):
            for q, *_ in index.label_in[w]:
                inv_in[q].add(w)
            for q, *_ in index.label_out[w]:
                inv_out[q].add(w)
        inv = (inv_in, inv_out)
        index._dyn_inverted = inv
    return inv


def _entry_index(entries: list, hub_pos: int) -> int:
    i = bisect_left(entries, hub_pos, key=lambda e: e[0])
    if i < len(entries) and entries[i][0] == hub_pos:
        return i
    return -1


def insert_edge(
    index: HPSPCIndex, a: int, b: int, strategy: str = "redundancy"
) -> UpdateStats:
    """Insert edge ``(a, b)`` and incrementally maintain the HP-SPC index."""
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    index.graph.add_edge(a, b)
    ensure_inverted(index)
    stats = UpdateStats("insert", (a, b), strategy)
    pos = index.pos
    pa, pb = pos[a], pos[b]

    forward_seeds = {
        q: (d + 1, c) for q, d, c, _f in index.label_in[a] if q < pb
    }
    backward_seeds = {
        q: (d + 1, c) for q, d, c, _f in index.label_out[b] if q < pa
    }
    for q in sorted(set(forward_seeds) | set(backward_seeds)):
        stats.hubs_processed += 1
        seed = forward_seeds.get(q)
        if seed is not None:
            _pass(index, q, b, seed[0], seed[1], True, strategy, stats)
        seed = backward_seeds.get(q)
        if seed is not None:
            _pass(index, q, a, seed[0], seed[1], False, strategy, stats)
    return stats


def _pass(
    index: HPSPCIndex,
    q: int,
    start: int,
    d0: int,
    c0: int,
    forward: bool,
    strategy: str,
    stats: UpdateStats,
) -> None:
    """One resumed counting BFS from hub ``q`` (Algorithm 6, generic)."""
    graph = index.graph
    pos = index.pos
    hub_vertex = index.order[q]
    if forward:
        table = index.label_in
        side = index.label_out[hub_vertex]
        neighbors = graph.out_neighbors
    else:
        table = index.label_out
        side = index.label_in[hub_vertex]
        neighbors = graph.in_neighbors
    full: dict[int, int] = {q2: d2 for q2, d2, _c2, _f2 in side}
    canon: dict[int, int] = {
        q2: d2 for q2, d2, _c2, f2 in side if f2 and q2 < q
    }
    inv = ensure_inverted(index)[0 if forward else 1]

    dist: dict[int, int] = {start: d0}
    cnt: dict[int, int] = {start: c0}
    queue: deque[int] = deque((start,))
    while queue:
        w = queue.popleft()
        d_w = dist[w]
        stats.vertices_visited += 1
        d_query = UNREACHED
        for q2, d2, _c2, _f2 in table[w]:
            if q2 > q:
                break
            od = full.get(q2)
            if od is not None and od + d2 < d_query:
                d_query = od + d2
        if d_w > d_query:
            continue
        _update_entry(
            index, table, inv, w, q, d_w, cnt[w], canon, forward,
            strategy, stats,
        )
        d_next = d_w + 1
        c_w = cnt[w]
        for u in neighbors(w):
            if pos[u] > q:
                d_u = dist.get(u)
                if d_u is None:
                    dist[u] = d_next
                    cnt[u] = c_w
                    queue.append(u)
                elif d_u == d_next:
                    cnt[u] += c_w


def _update_entry(
    index: HPSPCIndex,
    table: list[list],
    inv: list[set[int]],
    w: int,
    q: int,
    d: int,
    c: int,
    hub_canon: dict[int, int],
    forward: bool,
    strategy: str,
    stats: UpdateStats,
) -> None:
    entries = table[w]
    d_canon = UNREACHED
    for q2, d2, _c2, f2 in entries:
        if q2 >= q:
            break
        if f2:
            od = hub_canon.get(q2)
            if od is not None and od + d2 < d_canon:
                d_canon = od + d2
    flag = d_canon > d
    i = _entry_index(entries, q)
    if i >= 0:
        _q, d_old, c_old, _f_old = entries[i]
        if d < d_old:
            entries[i] = (q, d, c, flag)
            stats.entries_updated += 1
            if strategy == "minimality":
                _clean_vertex(index, w, forward, stats)
        elif d == d_old:
            entries[i] = (q, d, c_old + c, flag)
            stats.entries_updated += 1
    else:
        insort(entries, (q, d, c, flag), key=lambda e: e[0])
        inv[q].add(w)
        stats.entries_added += 1
        if strategy == "minimality":
            _clean_vertex(index, w, forward, stats)


def _query_pair(index: HPSPCIndex, s: int, t: int) -> int:
    """Full-label distance query (internal; avoids float inf)."""
    from repro.labeling.hpspc import merge_labels

    return merge_labels(index.label_out[s], index.label_in[t])[0]


def _clean_vertex(
    index: HPSPCIndex, w: int, forward: bool, stats: UpdateStats
) -> None:
    """Algorithm 8 on the generic index."""
    inv_in, inv_out = ensure_inverted(index)
    order = index.order
    if forward:
        entries = index.label_in[w]
        keep = []
        for entry in entries:
            q2, d2, _c2, _f2 = entry
            if d2 > _query_pair(index, order[q2], w):
                inv_in[q2].discard(w)
                stats.entries_removed += 1
            else:
                keep.append(entry)
        if len(keep) != len(entries):
            entries[:] = keep
        hub_w = index.pos[w]
        for v in list(inv_out[hub_w]):
            entries_v = index.label_out[v]
            i = _entry_index(entries_v, hub_w)
            if i < 0:
                inv_out[hub_w].discard(v)
                continue
            if entries_v[i][1] > _query_pair(index, v, w):
                del entries_v[i]
                inv_out[hub_w].discard(v)
                stats.entries_removed += 1
    else:
        entries = index.label_out[w]
        keep = []
        for entry in entries:
            q2, d2, _c2, _f2 = entry
            if d2 > _query_pair(index, w, order[q2]):
                inv_out[q2].discard(w)
                stats.entries_removed += 1
            else:
                keep.append(entry)
        if len(keep) != len(entries):
            entries[:] = keep
        hub_w = index.pos[w]
        for v in list(inv_in[hub_w]):
            entries_v = index.label_in[v]
            i = _entry_index(entries_v, hub_w)
            if i < 0:
                inv_in[hub_w].discard(v)
                continue
            if entries_v[i][1] > _query_pair(index, w, v):
                del entries_v[i]
                inv_in[hub_w].discard(v)
                stats.entries_removed += 1


def delete_edge(index: HPSPCIndex, a: int, b: int) -> UpdateStats:
    """Delete edge ``(a, b)`` and repair the HP-SPC index."""
    graph = index.graph
    if not graph.has_edge(a, b):
        raise EdgeNotFoundError(a, b)
    d_to_a = bfs_distances(graph, a, reverse=True)
    d_to_b = bfs_distances(graph, b, reverse=True)
    d_from_a = bfs_distances(graph, a)
    d_from_b = bfs_distances(graph, b)
    graph.remove_edge(a, b)
    aff_in = {
        v
        for v in graph.vertices()
        if d_to_b[v] is not INF and d_to_a[v] + 1 == d_to_b[v]
    }
    aff_out = {
        u
        for u in graph.vertices()
        if d_from_a[u] is not INF and d_from_b[u] + 1 == d_from_a[u]
    }
    ensure_inverted(index)
    stats = UpdateStats("delete", (a, b))
    stats.details["affected_in_hubs"] = len(aff_in)
    stats.details["affected_out_hubs"] = len(aff_out)
    pos = index.pos
    for h in sorted(aff_in | aff_out, key=lambda v: pos[v]):
        stats.hubs_processed += 1
        if h in aff_in:
            _repair_hub(index, h, True, stats)
        if h in aff_out:
            _repair_hub(index, h, False, stats)
    return stats


def _repair_hub(
    index: HPSPCIndex, h: int, forward: bool, stats: UpdateStats
) -> None:
    """Re-run the construction BFS for hub ``h`` and replace its
    fingerprint (fresh upserts + inverted-index stale removal)."""
    graph = index.graph
    pos = index.pos
    ph = pos[h]
    inv_in, inv_out = ensure_inverted(index)
    if forward:
        target_table = index.label_in
        inv = inv_in
        neighbors = graph.out_neighbors
        side = index.label_out[h]
    else:
        target_table = index.label_out
        inv = inv_out
        neighbors = graph.in_neighbors
        side = index.label_in[h]
    hub_dist = {q: d for q, d, _c, f in side if f and q < ph}

    dist: dict[int, int] = {h: 0}
    cnt: dict[int, int] = {h: 1}
    queue: deque[int] = deque((h,))
    fresh: dict[int, tuple[int, int, bool]] = {}
    while queue:
        w = queue.popleft()
        d_w = dist[w]
        stats.vertices_visited += 1
        d_via = UNREACHED
        for q, dq, _cq, canonical in target_table[w]:
            if q >= ph:
                break
            if canonical:
                hd = hub_dist.get(q)
                if hd is not None and hd + dq < d_via:
                    d_via = hd + dq
        if d_via < d_w:
            continue
        fresh[w] = (d_w, cnt[w], d_via > d_w)
        d_next = d_w + 1
        c_w = cnt[w]
        for u in neighbors(w):
            if pos[u] > ph:
                d_u = dist.get(u)
                if d_u is None:
                    dist[u] = d_next
                    cnt[u] = c_w
                    queue.append(u)
                elif d_u == d_next:
                    cnt[u] += c_w

    stale = inv[ph] - fresh.keys()
    for w, (d, c, flag) in fresh.items():
        entries = target_table[w]
        i = _entry_index(entries, ph)
        if i >= 0:
            if entries[i][1:] != (d, c, flag):
                entries[i] = (ph, d, c, flag)
                stats.entries_updated += 1
        else:
            insort(entries, (ph, d, c, flag), key=lambda e: e[0])
            inv[ph].add(w)
            stats.entries_added += 1
    for w in stale:
        entries = target_table[w]
        i = _entry_index(entries, ph)
        if i >= 0:
            del entries[i]
            stats.entries_removed += 1
        inv[ph].discard(w)
