"""Hub labeling substrate: orderings, the HP-SPC index, label packing."""

from repro.labeling.hpspc import HPSPCIndex, UNREACHED, merge_labels
from repro.labeling.labelstore import (
    LabelStore,
    LabelTable,
    LabelView,
    join_min_count,
    join_min_dist,
)
from repro.labeling.ordering import (
    degree_order,
    min_in_out_order,
    positions,
    random_order,
    validate_order,
)
from repro.labeling.packing import (
    COUNT_BITS,
    DISTANCE_BITS,
    ENTRY_BYTES,
    VERTEX_BITS,
    pack_entry,
    packed_size_bytes,
    unpack_entry,
)

__all__ = [
    "HPSPCIndex",
    "LabelStore",
    "LabelTable",
    "LabelView",
    "UNREACHED",
    "join_min_count",
    "join_min_dist",
    "merge_labels",
    "degree_order",
    "min_in_out_order",
    "positions",
    "random_order",
    "validate_order",
    "COUNT_BITS",
    "DISTANCE_BITS",
    "ENTRY_BYTES",
    "VERTEX_BITS",
    "pack_entry",
    "packed_size_bytes",
    "unpack_entry",
]
