"""Typed, frozen serving configuration (the ``ServeEngine`` surface).

``ServeEngine.__init__`` accreted 22 keyword arguments across PRs 3-7.
This module splits that flat surface into four cohesive frozen
dataclasses composed by :class:`ServeConfig`:

* :class:`DurabilityConfig` — WAL/checkpoint placement and cadence
* :class:`AdmissionConfig` — bounded-queue backpressure policy
* :class:`DeferConfig` — deferred deletion repair and its worker pool
* :class:`RetryConfig` — transient-fault retry and probe backoff

Every field validates in ``__post_init__`` and raises
:class:`~repro.errors.ConfigurationError` on a bad value, so an invalid
configuration is rejected at *construction* (before any thread starts or
any file is opened).  The dataclasses are the single source of truth for
three different front doors:

* ``ServeEngine(source, config=...)`` — the typed constructor; the old
  flat keywords keep working through :meth:`ServeConfig.from_kwargs`
  behind a ``DeprecationWarning`` shim in the engine.
* JSON — :meth:`ServeConfig.to_dict` / :meth:`ServeConfig.from_dict`
  round-trip losslessly, which is how ``--config FILE`` loads and how a
  cluster primary ships one config object to its replica processes.
* the CLI — :func:`add_config_arguments` generates one ``repro serve`` /
  ``repro cluster serve`` flag per field from the field metadata, so the
  flag set can never drift from the dataclasses.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any

from repro.core.batch import DEFAULT_REBUILD_THRESHOLD
from repro.core.maintenance import STRATEGIES
from repro.errors import ConfigurationError
from repro.persist.manager import (
    DEFAULT_CHECKPOINT_WAL_BYTES,
    DEFAULT_FULL_CHECKPOINT_EVERY,
)

__all__ = [
    "AdmissionConfig",
    "DEFAULT_SUBMIT_TIMEOUT",
    "DeferConfig",
    "DurabilityConfig",
    "RetryConfig",
    "ServeConfig",
    "add_config_arguments",
    "config_from_args",
    "load_config_file",
]

#: Default admission wait bound for the ``"block"`` backpressure policy.
DEFAULT_SUBMIT_TIMEOUT = 30.0


def _cfg(
    default: Any,
    help_: str,
    *,
    flag: str | None = None,
    choices: tuple[str, ...] | None = None,
    arg: type | None = None,
):
    """A dataclass field carrying the CLI metadata for one option."""
    meta: dict[str, Any] = {"help": help_}
    if flag is not None:
        meta["flag"] = flag
    if choices is not None:
        meta["choices"] = choices
    if arg is not None:
        meta["arg"] = arg
    return field(default=default, metadata=meta)


@dataclass(frozen=True)
class DurabilityConfig:
    """Where — and how hard — the engine makes batches durable.

    Without a ``data_dir`` the engine serves purely in memory.  With
    one, every batch is durably logged before its epoch publishes
    (log-before-publish), checkpoints are cut whenever the WAL suffix
    outgrows ``checkpoint_wal_bytes``, and the same directory is the
    replication log a :mod:`repro.cluster` replica tails.
    """

    data_dir: str | None = _cfg(
        None,
        "durability directory (WAL + checkpoints); omit to serve "
        "in-memory",
        arg=str,
    )
    wal_fsync: str = _cfg(
        "always",
        "WAL flush policy: 'always' reaches the platter before an epoch "
        "publishes, 'off' survives process death but not power loss",
        choices=("always", "off"),
    )
    checkpoint_wal_bytes: int = _cfg(
        DEFAULT_CHECKPOINT_WAL_BYTES,
        "cut a checkpoint once the WAL suffix exceeds this many bytes",
        flag="--checkpoint-bytes",
        arg=int,
    )
    full_checkpoint_every: int = _cfg(
        DEFAULT_FULL_CHECKPOINT_EVERY,
        "full (vs delta) checkpoint cadence along a chain",
        arg=int,
    )
    checkpoint_on_stop: bool = _cfg(
        True,
        "write a final checkpoint on clean stop so the next open "
        "skips WAL replay",
    )

    def __post_init__(self) -> None:
        if self.data_dir is not None and not isinstance(self.data_dir, str):
            # Accept Path-likes, store a string: to_dict() must be
            # JSON-serializable as-is.
            object.__setattr__(self, "data_dir", str(self.data_dir))
        if self.wal_fsync not in ("always", "off"):
            raise ConfigurationError(
                f"unknown wal_fsync policy {self.wal_fsync!r} "
                "(expected 'always' or 'off')"
            )
        if self.checkpoint_wal_bytes < 1:
            raise ConfigurationError(
                "checkpoint_wal_bytes must be at least 1"
            )
        if self.full_checkpoint_every < 1:
            raise ConfigurationError(
                "full_checkpoint_every must be at least 1"
            )


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounded admission: what ``submit()`` does when the queue is full.

    ``submit_timeout`` bounds only the ``"block"`` policy's wait, and a
    wait can only happen when the queue is *bounded*: with the default
    ``max_queue_depth=None`` the queue is unbounded, ``submit()`` never
    blocks, and a timeout can never apply.  A non-default
    ``submit_timeout`` combined with an unbounded queue is therefore
    rejected here instead of being silently ignored (which is what the
    flat keyword surface historically did).
    """

    max_queue_depth: int | None = _cfg(
        None,
        "bounded admission cap on ops submitted but not yet consumed "
        "(default: unbounded)",
        arg=int,
    )
    backpressure: str = _cfg(
        "block",
        "full-queue policy: 'block' (wait up to --submit-timeout), "
        "'reject' (raise immediately), or 'shed' (drop and count)",
        choices=("block", "reject", "shed"),
    )
    submit_timeout: float | None = _cfg(
        DEFAULT_SUBMIT_TIMEOUT,
        "admission wait bound in seconds for the 'block' policy "
        "(requires --max-queue-depth)",
        arg=float,
    )

    def __post_init__(self) -> None:
        if self.backpressure not in ("block", "reject", "shed"):
            raise ConfigurationError(
                f"unknown backpressure policy {self.backpressure!r} "
                "(expected 'block', 'reject', or 'shed')"
            )
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be at least 1")
        if self.submit_timeout is not None and self.submit_timeout <= 0:
            raise ConfigurationError(
                "submit_timeout must be positive (or None to wait "
                "forever)"
            )
        if (
            self.max_queue_depth is None
            and self.submit_timeout is not None
            and self.submit_timeout != DEFAULT_SUBMIT_TIMEOUT
        ):
            raise ConfigurationError(
                "submit_timeout applies only to bounded admission: an "
                "unbounded queue (max_queue_depth=None) never blocks "
                "submit(), so the timeout would be silently ignored — "
                "set max_queue_depth to bound the queue"
            )


@dataclass(frozen=True)
class DeferConfig:
    """Deferred deletion repair (background DECCNT) and its workers."""

    defer_deletions: bool = _cfg(
        False,
        "hand deletion batches to a background repair thread instead "
        "of repairing them on the writer",
    )
    workers: int | None = _cfg(
        None,
        "worker processes for parallel DECCNT repair and the rebuild "
        "fallback (default: consult $REPRO_BUILD_WORKERS)",
        arg=int,
    )

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                "workers must be at least 1 (or None to consult "
                "$REPRO_BUILD_WORKERS)"
            )


@dataclass(frozen=True)
class RetryConfig:
    """Transient-fault retry bounds and health-probe backoff."""

    io_retries: int = _cfg(
        4,
        "bounded retries for transient faults (WAL appends and batch "
        "applies) before escalating",
        arg=int,
    )
    io_backoff_s: float = _cfg(
        0.01,
        "initial retry backoff in seconds",
        arg=float,
    )
    probe_backoff_s: float = _cfg(
        0.05,
        "initial health-probe backoff in seconds",
        arg=float,
    )
    probe_max_backoff_s: float = _cfg(
        2.0,
        "exponential cap both backoffs climb to",
        arg=float,
    )

    def __post_init__(self) -> None:
        if self.io_retries < 0:
            raise ConfigurationError("io_retries must be non-negative")
        for name in ("io_backoff_s", "probe_backoff_s",
                     "probe_max_backoff_s"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


#: composed sections, in (attribute name, dataclass) order
_SECTIONS: tuple[tuple[str, type], ...] = ()  # filled after ServeConfig


@dataclass(frozen=True)
class ServeConfig:
    """The full serving configuration, one immutable value object.

    Runtime-only collaborators (``monitor``, ``on_publish``,
    ``on_defer`` callbacks) are *not* configuration: they stay explicit
    ``ServeEngine`` parameters, which is what keeps this object
    JSON-serializable end to end.
    """

    strategy: str | None = _cfg(
        None,
        "maintenance strategy for a fresh build (a recovered data_dir "
        "pins its own recorded strategy)",
        choices=STRATEGIES,
        arg=str,
    )
    batch_size: int = _cfg(
        64,
        "maximum ops drained into one maintenance batch",
        arg=int,
    )
    rebuild_threshold: float = _cfg(
        DEFAULT_REBUILD_THRESHOLD,
        "affected-hub fraction above which a batch takes the "
        "full-rebuild fallback",
        arg=float,
    )
    on_invalid: str = _cfg(
        "skip",
        "infeasible-op policy inside a batch: 'skip' drops and counts, "
        "'raise' poisons the batch",
        choices=("skip", "raise"),
    )
    on_poison: str = _cfg(
        "quarantine",
        "deterministic batch-failure policy: 'quarantine' dead-letters "
        "the batch and resumes, 'fail' sticks",
        choices=("quarantine", "fail"),
    )
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    defer: DeferConfig = field(default_factory=DeferConfig)
    retry: RetryConfig = field(default_factory=RetryConfig)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        if self.strategy is not None and self.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {self.strategy!r}; expected one of "
                f"{STRATEGIES}"
            )
        if self.on_invalid not in ("skip", "raise"):
            raise ConfigurationError(
                f"unknown on_invalid policy {self.on_invalid!r} "
                "(expected 'skip' or 'raise')"
            )
        if self.on_poison not in ("quarantine", "fail"):
            raise ConfigurationError(
                f"unknown on_poison policy {self.on_poison!r} "
                "(expected 'quarantine' or 'fail')"
            )
        for name, cls in _SECTIONS:
            if not isinstance(getattr(self, name), cls):
                raise ConfigurationError(
                    f"{name} must be a {cls.__name__}, got "
                    f"{type(getattr(self, name)).__name__}"
                )

    # ------------------------------------------------------------------
    # Flat (legacy keyword) surface
    # ------------------------------------------------------------------
    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> ServeConfig:
        """Build a config from the legacy flat ``ServeEngine`` keyword
        surface (``batch_size=..., data_dir=..., ...``).

        Unknown names raise :class:`ConfigurationError` listing them —
        the same contract the engine's deprecation shim relies on.
        """
        owners = {f.name: section for section, f in _flat_fields()}
        unknown = sorted(set(kwargs) - set(owners))
        if unknown:
            raise ConfigurationError(
                f"unknown ServeEngine option(s): {', '.join(unknown)}"
            )
        top: dict[str, Any] = {}
        nested: dict[str, dict[str, Any]] = {n: {} for n, _ in _SECTIONS}
        for name, value in kwargs.items():
            owner = owners[name]
            if owner is None:
                top[name] = value
            else:
                nested[owner][name] = value
        sections = {
            name: section_cls(**nested[name])
            for name, section_cls in _SECTIONS
        }
        return cls(**top, **sections)

    def to_kwargs(self) -> dict[str, Any]:
        """The flat keyword view (inverse of :meth:`from_kwargs`)."""
        out: dict[str, Any] = {}
        for section, f in _flat_fields():
            src = self if section is None else getattr(self, section)
            out[f.name] = getattr(src, f.name)
        return out

    def replace(self, **kwargs: Any) -> ServeConfig:
        """A copy with the given flat options replaced (re-validated)."""
        merged = self.to_kwargs()
        unknown = sorted(set(kwargs) - set(merged))
        if unknown:
            raise ConfigurationError(
                f"unknown ServeEngine option(s): {', '.join(unknown)}"
            )
        merged.update(kwargs)
        return ServeConfig.from_kwargs(**merged)

    # ------------------------------------------------------------------
    # JSON surface
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A nested plain-dict view, JSON-serializable as-is."""
        out: dict[str, Any] = {
            f.name: getattr(self, f.name)
            for f in fields(ServeConfig)
            if f.name not in dict(_SECTIONS)
        }
        for name, _ in _SECTIONS:
            section = getattr(self, name)
            out[name] = {
                f.name: getattr(section, f.name)
                for f in fields(type(section))
            }
        return out

    @classmethod
    def from_dict(cls, data: Any) -> ServeConfig:
        """Rebuild from :meth:`to_dict` output (e.g. a ``--config``
        JSON file); unknown keys raise :class:`ConfigurationError`."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                "config must be a JSON object of ServeConfig fields, "
                f"got {type(data).__name__}"
            )
        section_by_name = dict(_SECTIONS)
        top_names = {
            f.name for f in fields(cls) if f.name not in section_by_name
        }
        unknown = sorted(set(data) - top_names - set(section_by_name))
        if unknown:
            raise ConfigurationError(
                f"unknown config key(s): {', '.join(unknown)}"
            )
        top = {k: v for k, v in data.items() if k in top_names}
        sections: dict[str, Any] = {}
        for name, section_cls in _SECTIONS:
            sub = data.get(name, {})
            if not isinstance(sub, dict):
                raise ConfigurationError(
                    f"config section {name!r} must be a JSON object, "
                    f"got {type(sub).__name__}"
                )
            known = {f.name for f in fields(section_cls)}
            bad = sorted(set(sub) - known)
            if bad:
                raise ConfigurationError(
                    f"unknown config key(s) in section {name!r}: "
                    f"{', '.join(bad)}"
                )
            sections[name] = section_cls(**sub)
        return cls(**top, **sections)


_SECTIONS = (
    ("durability", DurabilityConfig),
    ("admission", AdmissionConfig),
    ("defer", DeferConfig),
    ("retry", RetryConfig),
)


def _flat_fields():
    """Yield ``(section name or None, field)`` over the whole flat
    surface, in declaration (and therefore CLI ``--help``) order."""
    section_names = {name for name, _ in _SECTIONS}
    for f in fields(ServeConfig):
        if f.name not in section_names:
            yield None, f
    for name, section_cls in _SECTIONS:
        for f in fields(section_cls):
            yield name, f


# ----------------------------------------------------------------------
# CLI generation (single source of truth for repro serve / repro cluster)
# ----------------------------------------------------------------------
def add_config_arguments(
    parser: argparse.ArgumentParser,
    exclude: tuple[str, ...] = (),
) -> None:
    """Add one flag per :class:`ServeConfig` field to ``parser``.

    Every generated flag defaults to ``None`` ("not set on the command
    line"), so :func:`config_from_args` can overlay only the flags the
    user actually passed onto a ``--config`` file or the defaults.
    Field metadata supplies help text, choices, and the occasional
    historical flag spelling (``--checkpoint-bytes``).
    """
    for _, f in _flat_fields():
        if f.name in exclude:
            continue
        flag = f.metadata.get("flag", "--" + f.name.replace("_", "-"))
        help_ = f.metadata.get("help", f.name)
        if isinstance(f.default, bool):
            parser.add_argument(
                flag,
                dest=f.name,
                action=argparse.BooleanOptionalAction,
                default=None,
                help=f"{help_} (default: {f.default})",
            )
            continue
        kwargs: dict[str, Any] = {
            "dest": f.name,
            "default": None,
            "help": f"{help_} (default: {f.default})",
        }
        if "choices" in f.metadata:
            kwargs["choices"] = list(f.metadata["choices"])
        if "arg" in f.metadata:
            kwargs["type"] = f.metadata["arg"]
        parser.add_argument(flag, **kwargs)


def config_from_args(
    args: argparse.Namespace,
    base: ServeConfig | None = None,
) -> ServeConfig:
    """Overlay the flags actually set in ``args`` onto ``base`` (or the
    defaults) and return the validated result."""
    config = base if base is not None else ServeConfig()
    overrides = {}
    for _, f in _flat_fields():
        value = getattr(args, f.name, None)
        if value is not None:
            overrides[f.name] = value
    return config.replace(**overrides) if overrides else config


def load_config_file(path: str | Path) -> ServeConfig:
    """Load a :meth:`ServeConfig.to_dict`-shaped JSON file."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read config file {path}: {exc}"
        ) from exc
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise ConfigurationError(
            f"config file {path} is not valid JSON: {exc}"
        ) from exc
    return ServeConfig.from_dict(data)
