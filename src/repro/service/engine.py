"""Single-writer / multi-reader serving engine with epoch publication.

One writer thread owns the :class:`ShortestCycleCounter`: it drains the
update queue in batches through the batched maintenance engine
(BATCH-INCCNT/DECCNT), then publishes an immutable :class:`Snapshot` of
the repaired labels.  Reader threads never touch the live index — they
grab the latest published snapshot (one atomic attribute read) and
answer ``sccnt`` / ``spcnt`` / ``top_suspicious`` against it, so a long
deletion repair pass no longer blocks queries; readers just keep serving
the previous epoch until the next one lands.

With ``defer_deletions=True`` the *writer* stops blocking on deletions
too: a deletion batch's DECCNT repair (or rebuild fallback) is handed to
a background repair thread — the affected hubs are tombstoned in the
live stores for the duration (see :class:`~repro.labeling.LabelStore`
tombstones and :class:`~repro.service.DeferredOverlay`) — while the
writer keeps draining the queue, buffering follow-up batches for the
repair thread to apply in submission order.  Epoch sequence, labels,
and WAL contents are identical to eager mode; only *who* runs the
repair and *when* changes.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Union

from repro.core.batch import DEFAULT_REBUILD_THRESHOLD
from repro.core.counter import ShortestCycleCounter
from repro.errors import (
    SelfLoopError,
    ServiceFailedError,
    ServiceStoppedError,
    VertexError,
)
from repro.graph.digraph import DiGraph
from repro.persist.manager import (
    DEFAULT_CHECKPOINT_WAL_BYTES,
    DEFAULT_FULL_CHECKPOINT_EVERY,
    DurabilityManager,
)
from repro.service.overlay import DeferredOverlay
from repro.service.snapshot import Snapshot

__all__ = ["ServeEngine", "ServeStats"]

Op = tuple[str, int, int]

#: Queue sentinel that tells the writer to exit after the ops before it.
_STOP = object()


@dataclass(frozen=True)
class ServeStats:
    """A point-in-time view of the engine's counters."""

    #: ops accepted by :meth:`ServeEngine.submit` so far
    ops_submitted: int = 0
    #: ops consumed from the queue (applied or skipped as infeasible)
    ops_consumed: int = 0
    #: net edge mutations the batches applied to the graph
    edges_applied: int = 0
    #: infeasible ops dropped by ``on_invalid="skip"``
    ops_skipped: int = 0
    #: update batches processed (== epochs published after start)
    batches: int = 0
    #: batches that took the full-rebuild fallback
    rebuilds: int = 0
    #: latest published epoch (0 = the initial snapshot)
    epoch: int = 0
    #: ops submitted but not yet consumed
    queue_depth: int = 0
    #: whether the writer thread is alive
    running: bool = False
    #: batches handed to (or buffered behind) the background repair
    #: thread instead of being applied inline by the writer
    deferrals: int = 0
    #: whether a background deferred repair is in flight right now
    repairing: bool = False


class ServeEngine:
    """Snapshot-isolated concurrent serving of a dynamic cycle counter.

    Parameters
    ----------
    source:
        A :class:`DiGraph` (an index is built over a copy) or an already
        built :class:`ShortestCycleCounter` (adopted — after
        :meth:`start`, mutate it only through this engine).
    batch_size:
        Maximum ops drained into one maintenance batch.  The writer
        never waits to fill a batch: it takes whatever is queued (up to
        this cap) and publishes, so a lone op still lands in one batch.
    on_invalid:
        Passed to :meth:`ShortestCycleCounter.apply_batch`.  Defaults to
        ``"skip"``: with asynchronous application, a client cannot know
        the graph state its op will meet, so infeasible ops are dropped
        and counted in :attr:`ServeStats.ops_skipped` rather than
        poisoning the batch.
    monitor:
        Optional :class:`repro.monitor.CycleMonitor` evaluated on every
        published epoch (writer thread; see
        :meth:`CycleMonitor.observe_snapshot`).
    on_publish:
        Optional callback invoked with each new :class:`Snapshot`
        *before* it becomes visible to :meth:`snapshot` (writer thread).
    data_dir:
        Optional durability directory (see :mod:`repro.persist`).  When
        it holds recoverable state the engine *recovers* — ``source``
        is ignored, the counter resumes at the recovered epoch, and
        :attr:`recovery` reports how it got there; when fresh, the
        engine bootstraps it with an initial full checkpoint of
        ``source``.  From then on every batch is durably logged before
        its epoch is published (log-before-publish), and checkpoints
        are cut whenever the WAL outgrows ``checkpoint_wal_bytes``.
    wal_fsync:
        ``"always"`` (default; each batch record is flushed before its
        epoch publishes) or ``"off"`` (no flushing: survives process
        death, not power loss).
    checkpoint_on_stop:
        Write a final checkpoint on a clean :meth:`stop` so the next
        open skips WAL replay (default ``True``).
    defer_deletions:
        Hand deletion batches to a background repair thread instead of
        repairing them on the writer (see the module docstring).  The
        writer keeps draining and logging the queue; batches that
        arrive while a repair is in flight are buffered and applied by
        the repair thread in submission order, so the published epoch
        sequence is identical to eager mode — readers simply keep the
        last clean epoch a little longer.  :meth:`overlay` exposes the
        staleness metadata during the window.
    workers:
        Worker-process count for the expensive maintenance phases
        (parallel per-hub DECCNT repair and the rebuild fallback;
        ``None`` consults ``$REPRO_BUILD_WORKERS``).  Results are
        bit-identical to serial for any value.
    on_defer:
        Test/instrumentation seam: called on the repair thread for each
        deferred batch, right after the affected hubs are tombstoned
        and before any label mutation.  Must not touch the engine's
        public API (it runs inside the mutation window).

    A callback or batch failure is recorded (see :attr:`failure`) and
    re-raised by :meth:`flush` / :meth:`stop`; the engine keeps serving
    the last good epoch meanwhile — ``apply_batch`` is atomic-on-raise,
    so the live index stays consistent.  The record is sticky: after the
    first raise it is kept (not cleared), and any later observation of
    an unhealthy engine — a dead writer, an undrained queue — raises a
    :class:`~repro.errors.ServiceFailedError` chaining it instead of
    waiting forever.
    """

    def __init__(
        self,
        source: Union[DiGraph, ShortestCycleCounter, None] = None,
        *,
        strategy: str | None = None,
        batch_size: int = 64,
        rebuild_threshold: float = DEFAULT_REBUILD_THRESHOLD,
        on_invalid: str = "skip",
        monitor=None,
        on_publish: Callable[[Snapshot], None] | None = None,
        data_dir: str | None = None,
        wal_fsync: str = "always",
        checkpoint_wal_bytes: int = DEFAULT_CHECKPOINT_WAL_BYTES,
        full_checkpoint_every: int = DEFAULT_FULL_CHECKPOINT_EVERY,
        checkpoint_on_stop: bool = True,
        defer_deletions: bool = False,
        workers: int | None = None,
        on_defer: Callable[[], None] | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self._durability: DurabilityManager | None = None
        self._recovery = None
        self._base_epoch = 0
        self._base_ops = 0
        self._checkpoint_on_stop = checkpoint_on_stop
        self._final_durability_stats = None
        if data_dir is not None:
            manager, recovered = DurabilityManager.open(
                data_dir,
                fsync=wal_fsync,
                checkpoint_wal_bytes=checkpoint_wal_bytes,
                full_checkpoint_every=full_checkpoint_every,
            )
            self._durability = manager
            self._recovery = recovered
            if recovered is not None:
                # The directory's state wins over `source`: the engine
                # resumes exactly where the last process stopped —
                # including the maintenance strategy the data was
                # written under (an explicit conflicting request is an
                # error, never silently dropped: replay fidelity pins
                # the strategy to the recorded one).
                if (
                    strategy is not None
                    and strategy != recovered.counter.strategy
                ):
                    raise ValueError(
                        f"data_dir {data_dir!r} was written with "
                        f"strategy {recovered.counter.strategy!r}; "
                        f"cannot resume it as {strategy!r}"
                    )
                self._counter = recovered.counter
                self._base_epoch = recovered.epoch
                self._base_ops = recovered.ops_applied
            elif source is None:
                raise ValueError(
                    f"data_dir {data_dir!r} holds no recoverable state "
                    "and no source graph/counter was given"
                )
        if self._recovery is None:
            if isinstance(source, ShortestCycleCounter):
                self._counter = source
            elif isinstance(source, DiGraph):
                self._counter = ShortestCycleCounter.build(
                    source, strategy=strategy or "redundancy"
                )
            else:
                raise ValueError(
                    "source must be a DiGraph or ShortestCycleCounter "
                    "(or data_dir must hold recoverable state)"
                )
            if self._durability is not None:
                self._durability.bootstrap(self._counter)
        self._batch_size = batch_size
        self._rebuild_threshold = rebuild_threshold
        self._on_invalid = on_invalid
        self._monitor = monitor
        self._on_publish = on_publish
        self._workers = workers
        self._defer = defer_deletions
        self._on_defer = on_defer
        # Deferred-repair hand-off: _repair_thread/_pending are guarded
        # by _defer_lock; the durability manager is single-threaded by
        # contract, so in deferred mode the writer's log_batch and the
        # repair thread's log_abort/note_applied serialize on _dur_lock.
        self._defer_lock = threading.Lock()
        self._dur_lock = threading.Lock()
        self._pending: list[tuple[list[Op], int | None]] = []
        self._repair_thread: threading.Thread | None = None
        self._deferrals = 0

        self._queue: "queue.SimpleQueue[object]" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._progress = threading.Condition(self._lock)
        self._submitted = 0
        self._consumed = 0
        self._edges_applied = 0
        self._skipped = 0
        self._batches = 0
        self._rebuilds = 0
        # The failure record is *sticky*: it is never cleared, only
        # marked reported, so a caller arriving after the first raise
        # still sees what went wrong instead of waiting on a queue that
        # nothing will ever drain.
        self._failure: BaseException | None = None
        self._failure_reported = False
        self._writer_exited = False
        self._writer: threading.Thread | None = None
        self._stopping = False
        self._published: Snapshot | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServeEngine":
        """Publish the base epoch (0, or the recovered epoch when the
        engine was opened on an existing data dir) and launch the
        writer thread."""
        if self._writer is not None:
            raise ServiceStoppedError("engine already started")
        snap = Snapshot.capture(
            self._counter,
            epoch=self._base_epoch,
            ops_applied=self._base_ops,
        )
        if self._on_publish is not None:
            self._on_publish(snap)
        if self._monitor is not None:
            self._monitor.observe_snapshot(snap)
        self._published = snap
        self._writer = threading.Thread(
            target=self._run, name="repro-serve-writer", daemon=True
        )
        self._writer.start()
        return self

    def stop(self, timeout: float | None = None) -> None:
        """Drain everything already submitted, stop the writer, and
        re-raise any unreported failure.  Idempotent.

        Raises :class:`TimeoutError` when the writer does not finish
        draining within ``timeout`` seconds; the engine stays stoppable
        — the stop request remains queued and a later ``stop()`` joins
        the writer again.
        """
        with self._lock:
            if self._stopping:
                writer = self._writer
            else:
                self._stopping = True
                writer = self._writer
                if writer is not None:
                    self._queue.put(_STOP)
        if writer is not None:
            writer.join(timeout)
            if writer.is_alive():
                raise TimeoutError(
                    f"serve writer did not stop within {timeout}s "
                    f"({self._submitted - self._consumed} ops still "
                    "queued); the engine remains stoppable — call "
                    "stop() again"
                )
        self._shutdown_durability()
        with self._progress:
            # A clean stop consumes everything accepted before the stop
            # request; a shortfall here means the writer died and the
            # remaining ops were lost — never report that as a clean
            # shutdown, even once the underlying failure was reported.
            undrained = self._consumed < self._submitted
            self._raise_failure_locked(wrap_reported=undrained)
            if undrained:
                raise ServiceFailedError(
                    "serve writer thread died with "
                    f"{self._submitted - self._consumed} submitted ops "
                    "unconsumed"
                ) from self._failure

    def _shutdown_durability(self) -> None:
        """Flush the WAL and (optionally) write a final checkpoint so a
        restart skips replay; idempotent, writer already joined."""
        dur = self._durability
        if dur is None:
            return
        try:
            if (
                self._checkpoint_on_stop
                and self._failure is None
                and self._published is not None
            ):
                dur.maybe_final_checkpoint(self._published)
            dur.sync()
        except BaseException as exc:  # noqa: BLE001 - surfaced via stop()
            self._record_failure(exc)
        finally:
            try:
                self._final_durability_stats = dur.stats()
            except OSError:  # pragma: no cover - vanished data dir
                pass
            dur.close()
            self._durability = None

    def _raise_failure_locked(self, wrap_reported: bool = False) -> None:
        """Raise the recorded failure (``_progress`` held).

        The record is sticky — never cleared.  An unreported failure is
        raised as the original exception and marked reported; an
        already-reported one is re-raised only when ``wrap_reported`` is
        set (the unhealthy paths: a dead writer, an undrained queue), as
        a :class:`ServiceFailedError` chaining the original, so healthy
        later flushes/stops are not poisoned by old news.
        """
        failure = self._failure
        if failure is None:
            return
        if not self._failure_reported:
            self._failure_reported = True
            raise failure
        if wrap_reported:
            raise ServiceFailedError(
                f"serve writer failed earlier: {failure!r}"
            ) from failure

    def __enter__(self) -> "ServeEngine":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, op: str, tail: int, head: int) -> None:
        """Queue one ``insert``/``delete`` op for the writer.

        Malformed ops (unknown name, out-of-range vertex, self loop) are
        rejected here, synchronously; *presence* conflicts are resolved
        by the writer under the engine's ``on_invalid`` policy, because
        only the application order decides them.
        """
        if op not in ("insert", "delete"):
            raise ValueError(f"unknown serve op {op!r}")
        n = self._counter.graph.n
        if not 0 <= tail < n:
            raise VertexError(tail, n)
        if not 0 <= head < n:
            raise VertexError(head, n)
        if tail == head:
            raise SelfLoopError(tail)
        with self._lock:
            if self._stopping or self._writer is None:
                raise ServiceStoppedError(
                    "serving engine is not accepting updates"
                )
            self._submitted += 1
            # Enqueue under the same lock as the _stopping check (put
            # never blocks on a SimpleQueue): otherwise an accepted op
            # could land *behind* stop()'s _STOP sentinel and be
            # silently dropped, wedging flush() forever.
            self._queue.put((op, tail, head))

    def submit_many(self, ops: Iterable[Op]) -> int:
        """Queue a sequence of ops; returns how many were accepted."""
        count = 0
        for op, tail, head in ops:
            self.submit(op, tail, head)
            count += 1
        return count

    def snapshot(self) -> Snapshot:
        """The latest published snapshot (an atomic attribute read —
        safe from any thread, never blocks on the writer)."""
        snap = self._published
        if snap is None:
            raise ServiceStoppedError("engine not started")
        return snap

    def overlay(self) -> DeferredOverlay:
        """The latest clean snapshot wrapped with deferred-repair
        staleness metadata (see :class:`DeferredOverlay`).

        Useful mainly with ``defer_deletions=True``: queries delegate to
        the same snapshot :meth:`snapshot` returns, and
        :attr:`DeferredOverlay.stale` reports whether a repair window is
        open behind it.  Safe from any thread; never blocks.
        """
        snap = self.snapshot()
        index = self._counter.index
        stale_in = index.store_in.stale_hubs
        stale_out = index.store_out.stale_hubs
        with self._lock:
            pending = self._submitted - self._consumed
        return DeferredOverlay(snap, stale_in, stale_out, pending)

    def flush(self, timeout: float | None = None) -> Snapshot:
        """Block until every op submitted so far has been consumed and
        its epoch published; returns the then-current snapshot.

        Raises the writer's recorded failure, if any; a
        :class:`ServiceFailedError` when the writer thread is dead with
        submitted ops unconsumed (fail fast — nothing will ever drain
        them); and ``TimeoutError`` if a live writer does not drain the
        queue in ``timeout`` seconds.
        """
        with self._progress:
            target = self._submitted
            writer = self._writer
            self._progress.wait_for(
                lambda: (
                    self._consumed >= target
                    or (self._failure is not None
                        and not self._failure_reported)
                    or writer is None
                    or self._writer_exited
                ),
                timeout,
            )
            self._raise_failure_locked()
            if self._consumed < target:
                if writer is None or self._writer_exited:
                    raise ServiceFailedError(
                        "serve writer thread is dead with "
                        f"{target - self._consumed} submitted ops "
                        "unconsumed"
                    ) from self._failure
                raise TimeoutError(
                    f"serve queue did not drain within {timeout}s"
                )
        return self.snapshot()

    @property
    def counter(self) -> ShortestCycleCounter:
        """The live counter (writer-owned once the engine is running —
        do not mutate it from other threads)."""
        return self._counter

    @property
    def failure(self) -> BaseException | None:
        """The recorded batch/callback failure, if any (sticky — stays
        set after being raised by :meth:`flush` / :meth:`stop`)."""
        return self._failure

    @property
    def recovery(self):
        """The :class:`~repro.persist.RecoveryResult` this engine was
        opened from, or ``None`` (fresh directory / no ``data_dir``)."""
        return self._recovery

    def durability_stats(self):
        """WAL/checkpoint counters, or ``None`` without a ``data_dir``
        (after :meth:`stop`, the final pre-close stats)."""
        if self._durability is not None:
            return self._durability.stats()
        return self._final_durability_stats

    def stats(self) -> ServeStats:
        """Current counters (consistent under the engine lock)."""
        with self._lock:
            snap = self._published
            return ServeStats(
                ops_submitted=self._submitted,
                ops_consumed=self._consumed,
                edges_applied=self._edges_applied,
                ops_skipped=self._skipped,
                batches=self._batches,
                rebuilds=self._rebuilds,
                epoch=snap.epoch if snap is not None else 0,
                queue_depth=self._submitted - self._consumed,
                running=(
                    self._writer is not None and self._writer.is_alive()
                ),
                deferrals=self._deferrals,
                repairing=self._repair_thread is not None,
            )

    # ------------------------------------------------------------------
    # Writer thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            while True:
                item = self._queue.get()
                if item is _STOP:
                    break
                ops = [item]
                stop_after = False
                while len(ops) < self._batch_size:
                    try:
                        nxt = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if nxt is _STOP:
                        stop_after = True
                        break
                    ops.append(nxt)
                if self._defer:
                    self._dispatch_deferred(ops)
                else:
                    self._apply_and_publish(ops)
                if stop_after:
                    break
        finally:
            # A live background repair still owns buffered batches; the
            # writer's exit must not strand them (stop() joins only the
            # writer).  Joining here keeps the clean-stop invariant:
            # writer dead => everything accepted has been consumed.
            with self._defer_lock:
                repair = self._repair_thread
            if repair is not None:
                repair.join()
            # Wake any flush() waiting on consumption: once this thread
            # exits (cleanly or not), nothing else will ever notify, and
            # flush must get the chance to fail fast instead of hanging.
            with self._progress:
                self._writer_exited = True
                self._progress.notify_all()

    def _record_failure(
        self, exc: BaseException, ops: list[Op] | None = None
    ) -> None:
        """Record ``exc`` in the sticky failure slot; with ``ops``,
        also count that batch as consumed (it will never apply)."""
        with self._progress:
            # Keep the first *unreported* failure; once that one has
            # been raised to a caller, a newer failure replaces it so
            # the next flush surfaces fresh trouble too.
            if self._failure is None or self._failure_reported:
                self._failure = exc
                self._failure_reported = False
            if ops is not None:
                self._consumed += len(ops)
            self._progress.notify_all()

    def _log_batch(self, ops: list[Op]) -> tuple[int | None, bool]:
        """Durably log ``ops``; returns ``(seq, ok)``.

        Log-before-publish: the batch's ops and exact apply_batch
        framing hit the disk (and, under fsync="always", the platter)
        before the index is touched, so every epoch a reader can ever
        observe is reconstructible from the data dir.  A failed append
        means no durability for this batch — it is dropped, not
        applied, and the failure surfaces through the sticky record.
        """
        dur = self._durability
        if dur is None:
            return None, True
        try:
            with self._dur_lock:
                seq = dur.log_batch(
                    ops, self._on_invalid, self._rebuild_threshold
                )
        except BaseException as exc:  # noqa: BLE001 - via flush()
            self._record_failure(exc, ops)
            return None, False
        return seq, True

    def _apply_and_publish(self, ops: list[Op]) -> None:
        seq, ok = self._log_batch(ops)
        if ok:
            self._apply_logged(ops, seq)

    def _dispatch_deferred(self, ops: list[Op]) -> None:
        """Deferred-mode routing (writer thread).

        The batch is logged first either way (WAL order == submission
        order, as in eager mode).  Then: while a background repair owns
        the mutator role, every batch is buffered for it; otherwise a
        batch with deletions spawns the repair thread and the writer
        moves on immediately, and a pure-insert batch is applied inline
        (INCCNT is cheap — deferring it would only delay the epoch).
        """
        seq, ok = self._log_batch(ops)
        if not ok:
            return
        with self._defer_lock:
            if self._repair_thread is not None:
                self._deferrals += 1
                self._pending.append((ops, seq))
                return
            if any(op == "delete" for op, _, _ in ops):
                self._deferrals += 1
                thread = threading.Thread(
                    target=self._repair_worker,
                    args=(ops, seq),
                    name="repro-serve-repair",
                    daemon=True,
                )
                self._repair_thread = thread
                thread.start()
                return
        self._apply_logged(ops, seq)

    def _repair_worker(self, ops: list[Op], seq: int | None) -> None:
        """Background repair thread: applies its seed batch and then
        drains whatever the writer buffered meanwhile, in order, before
        handing the mutator role back (clearing ``_repair_thread``)."""
        while True:
            try:
                self._apply_logged(ops, seq, defer=True)
            except BaseException as exc:  # noqa: BLE001 - backstop
                self._record_failure(exc, ops)
            with self._defer_lock:
                if not self._pending:
                    self._repair_thread = None
                    return
                ops, seq = self._pending.pop(0)

    def _apply_logged(
        self, ops: list[Op], seq: int | None, defer: bool = False
    ) -> None:
        dur = self._durability
        on_plan = None
        if defer:
            # Tombstone exactly the hubs whose fingerprints the repair
            # is about to invalidate, for exactly the mutation window:
            # set when the repair plan is known (before any label or
            # graph mutation), cleared when apply_batch returns (the
            # labels are clean again — repaired, or swapped by the
            # rebuild fallback).  Tombstones are in-memory only, so the
            # WAL/recovery path never sees them.
            index = self._counter.index
            store_in, store_out = index.store_in, index.store_out

            def on_plan(del_in: set[int], del_out: set[int]) -> None:
                store_in.tombstone_hubs(del_in)
                store_out.tombstone_hubs(del_out)
                if self._on_defer is not None:
                    self._on_defer()

        try:
            try:
                stats = self._counter.apply_batch(
                    ops,
                    rebuild_threshold=self._rebuild_threshold,
                    on_invalid=self._on_invalid,
                    workers=self._workers,
                    on_repair_plan=on_plan,
                )
            finally:
                if defer:
                    store_in.clear_tombstones()
                    store_out.clear_tombstones()
        except BaseException as exc:  # noqa: BLE001 - reported via flush()
            if dur is not None:
                # apply_batch is atomic-on-raise, so the live state
                # excludes this batch; mark the logged record aborted so
                # recovery skips it too.  (Losing the marker is safe:
                # the same deterministic exception fires on replay.)
                try:
                    with self._dur_lock:
                        dur.log_abort(seq)
                except BaseException:  # noqa: BLE001 - crash-equivalent
                    pass
            self._record_failure(exc, ops)
            return
        try:
            prev = self._published
            snap = Snapshot.capture(
                self._counter,
                epoch=(prev.epoch if prev is not None else 0) + 1,
                ops_applied=self._base_ops + self._consumed + len(ops),
            )
            # Publication order: observers first, so any state they
            # derive (alert bookkeeping, recorded ground truth) exists
            # before a reader can see the epoch.
            if self._on_publish is not None:
                self._on_publish(snap)
            if self._monitor is not None:
                self._monitor.observe_snapshot(snap)
        except BaseException as exc:  # noqa: BLE001 - reported via flush()
            # The batch IS applied (and logged); only publication
            # failed.  No abort record — recovery must replay it.
            self._record_failure(exc, ops)
            return
        self._published = snap
        with self._progress:
            self._consumed += len(ops)
            self._edges_applied += stats.applied
            self._skipped += len(stats.skipped)
            self._batches += 1
            self._rebuilds += int(stats.rebuilt)
            self._progress.notify_all()
        if dur is not None:
            # Checkpoint *after* publication, from the published frozen
            # snapshot, between batches — the only window in which the
            # live graph still equals the snapshot's capture state.  In
            # deferred mode the applying thread *is* the sole mutator
            # here (the writer only logs and buffers while a repair is
            # alive), so the window argument holds unchanged.
            try:
                with self._dur_lock:
                    dur.note_applied(seq, snap)
            except BaseException as exc:  # noqa: BLE001 - via flush()
                self._record_failure(exc)
