"""Single-writer / multi-reader serving engine with epoch publication.

One writer thread owns the :class:`ShortestCycleCounter`: it drains the
update queue in batches through the batched maintenance engine
(BATCH-INCCNT/DECCNT), then publishes an immutable :class:`Snapshot` of
the repaired labels.  Reader threads never touch the live index — they
grab the latest published snapshot (one atomic attribute read) and
answer ``sccnt`` / ``spcnt`` / ``top_suspicious`` against it, so a long
deletion repair pass no longer blocks queries; readers just keep serving
the previous epoch until the next one lands.

With ``defer_deletions=True`` the *writer* stops blocking on deletions
too: a deletion batch's DECCNT repair (or rebuild fallback) is handed to
a background repair thread — the affected hubs are tombstoned in the
live stores for the duration (see :class:`~repro.labeling.LabelStore`
tombstones and :class:`~repro.service.DeferredOverlay`) — while the
writer keeps draining the queue, buffering follow-up batches for the
repair thread to apply in submission order.  Epoch sequence, labels,
and WAL contents are identical to eager mode; only *who* runs the
repair and *when* changes.

Self-healing (fault taxonomy)
-----------------------------

The writer classifies every batch failure instead of treating them all
as fatal:

* **poison** — a deterministic :class:`~repro.errors.ReproError` from
  ``apply_batch`` (an infeasible op under ``on_invalid="raise"``, a
  packing overflow, ...) would raise again on every retry and on
  recovery replay.  Under the default ``on_poison="quarantine"`` the
  batch is WAL-marked aborted, appended to a CRC-framed dead-letter log
  (:mod:`repro.persist.deadletter`), counted in
  :attr:`ServeStats.quarantined`, and the writer *resumes the stream*;
  ``on_poison="fail"`` keeps the pre-taxonomy behavior (sticky failure
  surfaced by :meth:`flush`).
* **transient** — a :class:`~repro.errors.WorkerCrashError` or an
  ``OSError`` with a disk-pressure errno (``ENOSPC``/``EIO``) is
  retried with bounded exponential backoff (``io_retries`` attempts).
* **durability outage** — a WAL append still failing after its retries
  drives the health machine to ``read_only``: the batch is *parked*
  (not lost, not acked), new writes are rejected with
  :class:`~repro.errors.EngineReadOnlyError`, readers keep answering
  from the last published epoch, and a background probe with
  exponential backoff retries the append — success re-admits writes.
  A failing *checkpoint* is softer: ``degraded_durability`` (writes
  still durably logged and acked; the WAL just grows) with an idle-time
  probe that retries the checkpoint.
* **unclassifiable** — anything else stays a sticky failure, exactly as
  before; a mutator-role thread *dying* (writer or repair) moves the
  engine to ``failed``, where reads raise too.

See :mod:`repro.service.health` for the state machine and
:class:`ServeStats` / :meth:`ServeEngine.durability_stats` for how the
states and counters are exposed.
"""

from __future__ import annotations

import errno
import queue
import threading
import time
import warnings
from dataclasses import dataclass
from dataclasses import replace as _dc_replace
from collections.abc import Callable, Iterable, Sequence

from repro.analysis import lockdep
from repro.core.counter import ShortestCycleCounter
from repro.errors import (
    ConfigurationError,
    BackpressureError,
    DurabilityUnavailableError,
    EngineReadOnlyError,
    ReproError,
    SelfLoopError,
    ServiceFailedError,
    ServiceStoppedError,
    VertexError,
    WorkerCrashError,
)
from repro.graph.digraph import DiGraph
from repro.persist.deadletter import (
    DEADLETTER_FILE,
    DeadLetter,
    DeadLetterLog,
)
from repro.persist.manager import DurabilityManager
from repro.service.config import ServeConfig
from repro.service.health import (
    DEGRADED_DURABILITY,
    FAILED,
    HEALTHY,
    READ_ONLY,
)
from repro.service.overlay import DeferredOverlay
from repro.service.snapshot import Snapshot

__all__ = ["ServeEngine", "ServeStats"]

Op = tuple[str, int, int]

#: Queue sentinel that tells the writer to exit after the ops before it.
_STOP = object()

#: Disk-pressure errnos treated as transient (retry, then degrade)
#: rather than unclassifiable (sticky failure).
_TRANSIENT_ERRNOS = frozenset({errno.ENOSPC, errno.EIO})


@dataclass(frozen=True)
class ServeStats:
    """A point-in-time view of the engine's counters."""

    #: ops accepted by :meth:`ServeEngine.submit` so far
    ops_submitted: int = 0
    #: ops consumed from the queue (applied, skipped, or quarantined)
    ops_consumed: int = 0
    #: net edge mutations the batches applied to the graph
    edges_applied: int = 0
    #: infeasible ops dropped by ``on_invalid="skip"``
    ops_skipped: int = 0
    #: update batches processed (== epochs published after start)
    batches: int = 0
    #: batches that took the full-rebuild fallback
    rebuilds: int = 0
    #: latest published epoch (0 = the initial snapshot)
    epoch: int = 0
    #: ops submitted but not yet consumed
    queue_depth: int = 0
    #: whether the writer thread is alive
    running: bool = False
    #: batches handed to (or buffered behind) the background repair
    #: thread instead of being applied inline by the writer
    deferrals: int = 0
    #: whether a background deferred repair is in flight right now
    repairing: bool = False
    #: poison batches quarantined to the dead-letter log
    quarantined: int = 0
    #: ops dropped at admission under the ``"shed"`` policy
    ops_shed: int = 0
    #: ops refused at admission (``"reject"`` or ``"block"`` timeout)
    ops_rejected: int = 0
    #: health state (see :mod:`repro.service.health`)
    health: str = HEALTHY
    #: transient-fault retries performed (WAL appends + batch applies)
    io_retries: int = 0
    #: WAL append attempts that raised a transient errno
    wal_append_failures: int = 0
    #: checkpoint attempts that raised a transient errno
    checkpoint_failures: int = 0


class ServeEngine:
    """Snapshot-isolated concurrent serving of a dynamic cycle counter.

    Parameters
    ----------
    source:
        A :class:`DiGraph` (an index is built over a copy) or an already
        built :class:`ShortestCycleCounter` (adopted — after
        :meth:`start`, mutate it only through this engine).
    config:
        A frozen :class:`~repro.service.config.ServeConfig` — the whole
        option surface as one validated, JSON-serializable value object
        (see :mod:`repro.service.config` for every field).  Defaults
        apply when omitted.  The pre-redesign flat keyword surface
        (``batch_size=..., data_dir=..., ...``) still works through a
        shim that emits a :class:`DeprecationWarning` and builds the
        equivalent config via :meth:`ServeConfig.from_kwargs`; mixing
        both in one call is a :class:`ConfigurationError`.
    monitor:
        Optional :class:`repro.monitor.CycleMonitor` evaluated on every
        published epoch (writer thread; see
        :meth:`CycleMonitor.observe_snapshot`).  A runtime collaborator,
        not configuration — hence not a :class:`ServeConfig` field.
    on_publish:
        Optional callback invoked with each new :class:`Snapshot`
        *before* it becomes visible to :meth:`snapshot` (writer thread).
    on_defer:
        Test/instrumentation seam: called on the repair thread for each
        deferred batch, right after the affected hubs are tombstoned
        and before any label mutation.  Must not touch the engine's
        public API (it runs inside the mutation window).

    With ``config.durability.data_dir`` set, a directory holding
    recoverable state wins over ``source``: the engine resumes at the
    recovered epoch (see :attr:`recovery`) under the strategy the data
    was written with; a fresh directory is bootstrapped with an initial
    full checkpoint of ``source``.  From then on every batch is durably
    logged before its epoch is published (log-before-publish).

    A callback or batch failure is recorded (see :attr:`failure`) and
    re-raised by :meth:`flush` / :meth:`stop`; the engine keeps serving
    the last good epoch meanwhile — ``apply_batch`` is atomic-on-raise,
    so the live index stays consistent.  The record is sticky: after the
    first raise it is kept (not cleared), and any later observation of
    an unhealthy engine — a dead writer, an undrained queue — raises a
    :class:`~repro.errors.ServiceFailedError` chaining it instead of
    waiting forever.
    """

    def __init__(
        self,
        source: DiGraph | ShortestCycleCounter | None = None,
        config: ServeConfig | None = None,
        *,
        monitor=None,
        on_publish: Callable[[Snapshot], None] | None = None,
        on_defer: Callable[[], None] | None = None,
        **options,
    ) -> None:
        if options:
            # Deprecation shim: the pre-redesign flat keyword surface.
            # from_kwargs rejects unknown names and runs the same field
            # validation the typed path gets, so behavior is pinned
            # equivalent (tests/service/test_config.py).
            if config is not None:
                raise ConfigurationError(
                    "pass either config=ServeConfig(...) or the legacy "
                    "flat keyword options, not both; offending "
                    f"option(s): {', '.join(sorted(options))}"
                )
            warnings.warn(
                "passing ServeEngine options as flat keyword arguments "
                "is deprecated; build a repro.service.ServeConfig and "
                "pass it as config=...",
                DeprecationWarning,
                stacklevel=2,
            )
            config = ServeConfig.from_kwargs(**options)
        elif config is None:
            config = ServeConfig()
        elif not isinstance(config, ServeConfig):
            raise ConfigurationError(
                "config must be a repro.service.ServeConfig, got "
                f"{type(config).__name__}"
            )
        self._config = config
        dur_cfg = config.durability
        strategy = config.strategy
        self._durability: DurabilityManager | None = None
        self._recovery = None
        self._base_epoch = 0
        self._base_ops = 0
        self._checkpoint_on_stop = dur_cfg.checkpoint_on_stop
        self._final_durability_stats = None
        if dur_cfg.data_dir is not None:
            manager, recovered = DurabilityManager.open(
                dur_cfg.data_dir,
                fsync=dur_cfg.wal_fsync,
                checkpoint_wal_bytes=dur_cfg.checkpoint_wal_bytes,
                full_checkpoint_every=dur_cfg.full_checkpoint_every,
            )
            self._durability = manager
            self._recovery = recovered
            if recovered is not None:
                # The directory's state wins over `source`: the engine
                # resumes exactly where the last process stopped —
                # including the maintenance strategy the data was
                # written under (an explicit conflicting request is an
                # error, never silently dropped: replay fidelity pins
                # the strategy to the recorded one).
                if (
                    strategy is not None
                    and strategy != recovered.counter.strategy
                ):
                    raise ConfigurationError(
                        f"data_dir {dur_cfg.data_dir!r} was written with "
                        f"strategy {recovered.counter.strategy!r}; "
                        f"cannot resume it as {strategy!r}"
                    )
                self._counter = recovered.counter
                self._base_epoch = recovered.epoch
                self._base_ops = recovered.ops_applied
            elif source is None:
                raise ConfigurationError(
                    f"data_dir {dur_cfg.data_dir!r} holds no recoverable "
                    "state and no source graph/counter was given"
                )
        if self._recovery is None:
            if isinstance(source, ShortestCycleCounter):
                self._counter = source
            elif isinstance(source, DiGraph):
                self._counter = ShortestCycleCounter.build(
                    source, strategy=strategy or "redundancy"
                )
            else:
                raise ConfigurationError(
                    "source must be a DiGraph or ShortestCycleCounter "
                    "(or data_dir must hold recoverable state)"
                )
            if self._durability is not None:
                self._durability.bootstrap(self._counter)
        self._dead_letter: DeadLetterLog | None = None
        if self._durability is not None:
            self._dead_letter = DeadLetterLog(
                self._durability.data_dir / DEADLETTER_FILE,
                fsync=dur_cfg.wal_fsync,
            )
        self._batch_size = config.batch_size
        self._rebuild_threshold = config.rebuild_threshold
        self._on_invalid = config.on_invalid
        self._monitor = monitor
        self._on_publish = on_publish
        self._workers = config.defer.workers
        self._defer = config.defer.defer_deletions
        self._on_defer = on_defer
        self._max_queue_depth = config.admission.max_queue_depth
        self._backpressure = config.admission.backpressure
        self._submit_timeout = config.admission.submit_timeout
        self._on_poison = config.on_poison
        self._io_retries = config.retry.io_retries
        self._io_backoff_s = config.retry.io_backoff_s
        self._probe_backoff_s = config.retry.probe_backoff_s
        self._probe_max_backoff_s = config.retry.probe_max_backoff_s
        # Deferred-repair hand-off: _repair_thread/_pending are guarded
        # by _defer_lock; the durability manager is single-threaded by
        # contract, so in deferred mode the writer's log_batch and the
        # repair thread's log_abort/note_applied serialize on _dur_lock.
        # Canonical acquisition order (REP001, enforced statically by
        # `repro analyze` and at runtime under REPRO_LOCKDEP=1):
        # _defer_lock -> _dur_lock -> _lock/_progress, ascending rank.
        self._defer_lock = lockdep.make_lock(
            "ServeEngine._defer_lock", rank=10)
        self._dur_lock = lockdep.make_lock(
            "ServeEngine._dur_lock", rank=20)
        self._pending: list[tuple[list[Op], int | None]] = []
        self._repair_thread: threading.Thread | None = None
        self._deferrals = 0

        self._queue: queue.SimpleQueue[object] = queue.SimpleQueue()
        self._lock = lockdep.make_lock("ServeEngine._lock", rank=30)
        self._progress = threading.Condition(self._lock)
        self._submitted = 0
        self._consumed = 0
        self._edges_applied = 0
        self._skipped = 0
        self._batches = 0
        self._rebuilds = 0
        self._shed = 0
        self._rejected = 0
        self._io_retry_count = 0
        self._wal_failures = 0
        self._ckpt_failures = 0
        self._quarantined: list[DeadLetter] = []
        self._health = HEALTHY
        #: probe interval while DEGRADED (writer thread only)
        self._probe_wait = self._probe_backoff_s
        # The failure record is *sticky*: it is never cleared, only
        # marked reported, so a caller arriving after the first raise
        # still sees what went wrong instead of waiting on a queue that
        # nothing will ever drain.
        self._failure: BaseException | None = None
        self._failure_reported = False
        #: the read-only transition's failure record, kept separately so
        #: a successful heal can retire it without erasing real news
        self._ro_failure: BaseException | None = None
        #: the exception that killed a mutator thread (FAILED state)
        self._writer_fatal: BaseException | None = None
        self._writer_exited = False
        self._writer: threading.Thread | None = None
        self._stopping = False
        self._published: Snapshot | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> ServeEngine:
        """Publish the base epoch (0, or the recovered epoch when the
        engine was opened on an existing data dir) and launch the
        writer thread."""
        if self._writer is not None:
            raise ServiceStoppedError("engine already started")
        snap = Snapshot.capture(
            self._counter,
            epoch=self._base_epoch,
            ops_applied=self._base_ops,
        )
        if self._on_publish is not None:
            self._on_publish(snap)
        if self._monitor is not None:
            self._monitor.observe_snapshot(snap)
        self._published = snap
        self._writer = threading.Thread(
            target=self._run, name="repro-serve-writer", daemon=True
        )
        self._writer.start()
        return self

    def stop(self, timeout: float | None = None) -> None:
        """Drain everything already submitted, stop the writer, and
        re-raise any unreported failure.  Idempotent.

        Raises :class:`TimeoutError` when the writer does not finish
        draining within ``timeout`` seconds; the engine stays stoppable
        — the stop request remains queued and a later ``stop()`` joins
        the writer again.
        """
        with self._progress:
            if self._stopping:
                writer = self._writer
            else:
                self._stopping = True
                writer = self._writer
                if writer is not None:
                    self._queue.put(_STOP)
            # Wake blocked submitters and any writer parked on the
            # stopping check so shutdown is prompt.
            self._progress.notify_all()
        if writer is not None:
            writer.join(timeout)
            if writer.is_alive():
                raise TimeoutError(
                    f"serve writer did not stop within {timeout}s "
                    f"({self._submitted - self._consumed} ops still "
                    "queued); the engine remains stoppable — call "
                    "stop() again"
                )
        self._shutdown_durability()
        with self._progress:
            # A clean stop consumes everything accepted before the stop
            # request; a shortfall here means ops were lost — a dead
            # writer, or a batch abandoned while parked in read_only —
            # and must never be reported as a clean shutdown, even once
            # the underlying failure was reported.
            undrained = self._consumed < self._submitted
            self._raise_failure_locked(wrap_reported=undrained)
            if undrained:
                raise ServiceFailedError(
                    "serve writer exited with "
                    f"{self._submitted - self._consumed} submitted ops "
                    "unconsumed"
                ) from (self._failure or self._writer_fatal)

    def _shutdown_durability(self) -> None:
        """Flush the WAL and (optionally) write a final checkpoint so a
        restart skips replay; idempotent, writer already joined."""
        dur = self._durability
        if dur is None:
            return
        try:
            if (
                self._checkpoint_on_stop
                and self._failure is None
                and self._writer_fatal is None
                and self._health in (HEALTHY, DEGRADED_DURABILITY)
                and self._published is not None
            ):
                dur.maybe_final_checkpoint(self._published)
            dur.sync()
        except BaseException as exc:  # noqa: BLE001 - surfaced via stop()
            self._record_failure(exc)
        finally:
            try:
                self._final_durability_stats = dur.stats()
            except OSError:  # pragma: no cover - vanished data dir
                pass
            if self._dead_letter is not None:
                self._dead_letter.close()
            dur.close()
            self._durability = None

    def _raise_failure_locked(self, wrap_reported: bool = False) -> None:
        """Raise the recorded failure (``_progress`` held).

        The record is sticky — never cleared.  An unreported failure is
        raised as the original exception and marked reported; an
        already-reported one is re-raised only when ``wrap_reported`` is
        set (the unhealthy paths: a dead writer, an undrained queue), as
        a :class:`ServiceFailedError` chaining the original, so healthy
        later flushes/stops are not poisoned by old news.
        """
        failure = self._failure
        if failure is None:
            return
        if not self._failure_reported:
            self._failure_reported = True
            raise failure
        if wrap_reported:
            raise ServiceFailedError(
                f"serve writer failed earlier: {failure!r}"
            ) from failure

    def __enter__(self) -> ServeEngine:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def _check_admission_locked(self) -> None:
        """Typed rejection for a closed/unhealthy engine (lock held)."""
        if self._stopping or self._writer is None:
            raise ServiceStoppedError(
                "serving engine is not accepting updates"
            )
        if self._health == FAILED:
            raise ServiceFailedError(
                "serving engine has failed; writes rejected"
            ) from (self._failure or self._writer_fatal)
        if self._health == READ_ONLY:
            raise EngineReadOnlyError(
                "serving engine is read-only: durable acknowledgement "
                "is unavailable (a disk probe is retrying in the "
                "background)"
            ) from self._failure

    def submit(self, op: str, tail: int, head: int) -> bool:
        """Queue one ``insert``/``delete`` op for the writer; returns
        whether the op was admitted (``False`` only under the
        ``"shed"`` backpressure policy).

        Malformed ops (unknown name, out-of-range vertex, self loop) are
        rejected here, synchronously; *presence* conflicts are resolved
        by the writer under the engine's ``on_invalid`` policy, because
        only the application order decides them.  With a
        ``max_queue_depth``, a full queue is handled per the
        ``backpressure`` policy (see the constructor).
        """
        if op not in ("insert", "delete"):
            raise ConfigurationError(f"unknown serve op {op!r}")
        n = self._counter.graph.n
        if not 0 <= tail < n:
            raise VertexError(tail, n)
        if not 0 <= head < n:
            raise VertexError(head, n)
        if tail == head:
            raise SelfLoopError(tail)
        with self._progress:
            self._check_admission_locked()
            maxd = self._max_queue_depth
            if maxd is not None:
                depth = self._submitted - self._consumed
                if depth >= maxd:
                    if self._backpressure == "reject":
                        self._rejected += 1
                        raise BackpressureError(depth, maxd)
                    if self._backpressure == "shed":
                        self._shed += 1
                        return False
                    # "block": wait for drain — or for a state in which
                    # waiting is pointless (stop, read_only, failed).
                    self._progress.wait_for(
                        lambda: (
                            self._stopping
                            or self._health in (READ_ONLY, FAILED)
                            or self._submitted - self._consumed < maxd
                        ),
                        self._submit_timeout,
                    )
                    self._check_admission_locked()
                    depth = self._submitted - self._consumed
                    if depth >= maxd:
                        self._rejected += 1
                        raise BackpressureError(
                            depth, maxd, timed_out=True
                        )
            self._submitted += 1
            # Enqueue under the same lock as the _stopping check (put
            # never blocks on a SimpleQueue): otherwise an accepted op
            # could land *behind* stop()'s _STOP sentinel and be
            # silently dropped, wedging flush() forever.
            self._queue.put((op, tail, head))
        return True

    def submit_many(self, ops: Iterable[Op]) -> int:
        """Queue a sequence of ops; returns how many were admitted
        (shed ops are skipped; admission errors propagate)."""
        count = 0
        for op, tail, head in ops:
            if self.submit(op, tail, head):
                count += 1
        return count

    def snapshot(self) -> Snapshot:
        """The latest published snapshot (an atomic attribute read —
        safe from any thread, never blocks on the writer).

        Reads stay available in every health state except ``failed``,
        where the engine's mutator died and the sticky failure is
        raised instead.
        """
        if self._health == FAILED:
            with self._progress:
                cause = self._failure or self._writer_fatal
            raise ServiceFailedError(
                "serving engine has failed; reads unavailable"
            ) from cause
        snap = self._published
        if snap is None:
            raise ServiceStoppedError("engine not started")
        return snap

    def count_many(self, vertices: Sequence[int]):
        """Batched ``SCCnt`` against the latest published snapshot —
        one atomic snapshot fetch, then the vectorized bulk kernel
        (:meth:`Snapshot.count_many`).  Safe from any thread."""
        return self.snapshot().count_many(vertices)

    def spcnt_many(self, pairs: Sequence[tuple[int, int]]):
        """Batched ``SPCnt`` against the latest published snapshot
        (:meth:`Snapshot.spcnt_many`).  Safe from any thread."""
        return self.snapshot().spcnt_many(pairs)

    def overlay(self) -> DeferredOverlay:
        """The latest clean snapshot wrapped with deferred-repair
        staleness metadata (see :class:`DeferredOverlay`).

        Useful mainly with ``defer_deletions=True``: queries delegate to
        the same snapshot :meth:`snapshot` returns, and
        :attr:`DeferredOverlay.stale` reports whether a repair window is
        open behind it.  Safe from any thread; never blocks.  Raises
        :class:`~repro.errors.ServiceFailedError` in the ``failed``
        state (e.g. the repair thread died with tombstones pending —
        the overlay's staleness metadata could never converge).
        """
        snap = self.snapshot()
        index = self._counter.index
        stale_in = index.store_in.stale_hubs
        stale_out = index.store_out.stale_hubs
        with self._lock:
            pending = self._submitted - self._consumed
        return DeferredOverlay(snap, stale_in, stale_out, pending)

    def flush(self, timeout: float | None = None) -> Snapshot:
        """Block until every op submitted so far has been consumed and
        its epoch published; returns the then-current snapshot.

        Raises the writer's recorded failure, if any; a
        :class:`ServiceFailedError` when the engine's mutator thread is
        dead with submitted ops unconsumed (fail fast — nothing will
        ever drain them); an
        :class:`~repro.errors.EngineReadOnlyError` when the engine is
        parked in ``read_only`` with ops awaiting durable
        acknowledgement; and ``TimeoutError`` if a live writer does not
        drain the queue in ``timeout`` seconds.
        """
        with self._progress:
            target = self._submitted
            writer = self._writer
            self._progress.wait_for(
                lambda: (
                    self._consumed >= target
                    or (self._failure is not None
                        and not self._failure_reported)
                    or writer is None
                    or self._writer_exited
                    or self._health in (READ_ONLY, FAILED)
                ),
                timeout,
            )
            if self._consumed < target and self._health == READ_ONLY:
                # The typed rejection subsumes the sticky read-only
                # record: mark it reported so the caller sees ONE
                # consistent error here (and a later healthy flush is
                # not poisoned by the healed outage).
                if self._failure is self._ro_failure:
                    self._failure_reported = True
                raise EngineReadOnlyError(
                    "serving engine is read-only with "
                    f"{target - self._consumed} ops awaiting "
                    "durable acknowledgement"
                ) from self._ro_failure
            self._raise_failure_locked()
            if self._consumed < target:
                if (
                    writer is None
                    or self._writer_exited
                    or self._health == FAILED
                ):
                    raise ServiceFailedError(
                        "serve writer thread is dead with "
                        f"{target - self._consumed} submitted ops "
                        "unconsumed"
                    ) from (self._failure or self._writer_fatal)
                raise TimeoutError(
                    f"serve queue did not drain within {timeout}s"
                )
        return self.snapshot()

    @property
    def counter(self) -> ShortestCycleCounter:
        """The live counter (writer-owned once the engine is running —
        do not mutate it from other threads)."""
        return self._counter

    @property
    def config(self) -> ServeConfig:
        """The immutable :class:`ServeConfig` this engine was built
        from (legacy keyword calls see the equivalent typed config)."""
        return self._config

    @property
    def running(self) -> bool:
        """Whether :meth:`start` has been called (the writer thread was
        launched; stays ``True`` after :meth:`stop`)."""
        return self._writer is not None

    @property
    def failure(self) -> BaseException | None:
        """The recorded batch/callback failure, if any (sticky — stays
        set after being raised by :meth:`flush` / :meth:`stop`)."""
        return self._failure

    @property
    def health(self) -> str:
        """Current health state (see :mod:`repro.service.health`)."""
        return self._health

    @property
    def recovery(self):
        """The :class:`~repro.persist.RecoveryResult` this engine was
        opened from, or ``None`` (fresh directory / no ``data_dir``)."""
        return self._recovery

    @property
    def dead_letter_path(self):
        """Path of the dead-letter log for durable engines, else
        ``None`` (the file itself exists only once a batch was
        quarantined)."""
        if self._dead_letter is not None:
            return self._dead_letter.path
        return None

    def quarantined(self) -> tuple[DeadLetter, ...]:
        """The batches quarantined so far (in-memory view; durable
        engines also persist each to the dead-letter log)."""
        with self._lock:
            return tuple(self._quarantined)

    def durability_stats(self):
        """WAL/checkpoint counters annotated with the engine's health
        state, or ``None`` without a ``data_dir`` (after :meth:`stop`,
        the final pre-close stats)."""
        if self._durability is not None:
            stats = self._durability.stats()
        else:
            stats = self._final_durability_stats
        if stats is None:
            return None
        return _dc_replace(stats, health=self._health)

    def stats(self) -> ServeStats:
        """Current counters (consistent under the engine lock)."""
        with self._lock:
            snap = self._published
            return ServeStats(
                ops_submitted=self._submitted,
                ops_consumed=self._consumed,
                edges_applied=self._edges_applied,
                ops_skipped=self._skipped,
                batches=self._batches,
                rebuilds=self._rebuilds,
                epoch=snap.epoch if snap is not None else 0,
                queue_depth=self._submitted - self._consumed,
                running=(
                    self._writer is not None and self._writer.is_alive()
                ),
                deferrals=self._deferrals,
                repairing=self._repair_thread is not None,
                quarantined=len(self._quarantined),
                ops_shed=self._shed,
                ops_rejected=self._rejected,
                health=self._health,
                io_retries=self._io_retry_count,
                wal_append_failures=self._wal_failures,
                checkpoint_failures=self._ckpt_failures,
            )

    # ------------------------------------------------------------------
    # Health transitions
    # ------------------------------------------------------------------
    def _set_health(self, state: str) -> None:
        with self._progress:
            self._health = state
            self._progress.notify_all()

    def _enter_read_only(self, cause: BaseException) -> None:
        """WAL appends exhausted their retries: reject writes, keep
        reads, and leave a typed record for flush()/stop()."""
        err = DurabilityUnavailableError(
            f"WAL append kept failing ({cause}); engine is read-only "
            "until a background probe reaches the disk again"
        )
        err.__cause__ = cause
        with self._progress:
            self._health = READ_ONLY
            self._ro_failure = err
            if self._failure is None or self._failure_reported:
                self._failure = err
                self._failure_reported = False
            self._progress.notify_all()

    def _exit_read_only(self) -> None:
        """A parked append finally succeeded: re-admit writes.  The
        read-only record is retired (marked reported) if still fresh —
        nothing was lost, so it must not poison a later healthy flush."""
        with self._progress:
            self._health = HEALTHY
            if self._failure is self._ro_failure:
                self._failure_reported = True
            self._ro_failure = None
            self._progress.notify_all()

    def _fail_engine(self, exc: BaseException) -> None:
        """A mutator-role thread died: terminal state, reads raise.

        Like a writer-loop fatal, the exception goes into
        ``_writer_fatal`` rather than the sticky slot: callers get a
        typed :class:`ServiceFailedError` chaining it, never the raw
        thread-killing exception re-raised on their own stack."""
        with self._progress:
            self._health = FAILED
            self._writer_fatal = exc
            self._progress.notify_all()

    # ------------------------------------------------------------------
    # Writer thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            self._writer_loop()
        except BaseException as exc:  # noqa: BLE001 - thread supervisor
            # The writer died with an unclassifiable error: terminal.
            # Deliberately NOT recorded into the sticky failure slot —
            # flush()/stop() report the stranded queue as a
            # ServiceFailedError chaining whatever was recorded before
            # (or this fatal, via _writer_fatal).
            with self._progress:
                self._health = FAILED
                self._writer_fatal = exc
                self._progress.notify_all()
            raise
        finally:
            # A live background repair still owns buffered batches; the
            # writer's exit must not strand them (stop() joins only the
            # writer).  Joining here keeps the clean-stop invariant:
            # writer dead => everything accepted has been consumed.
            with self._defer_lock:
                repair = self._repair_thread
            if repair is not None:
                repair.join()
            # Wake any flush() waiting on consumption: once this thread
            # exits (cleanly or not), nothing else will ever notify, and
            # flush must get the chance to fail fast instead of hanging.
            with self._progress:
                self._writer_exited = True
                self._progress.notify_all()

    def _writer_loop(self) -> None:
        while True:
            item = self._next_item()
            if item is _STOP:
                break
            if self._health == FAILED:
                # The repair thread died: later batches must not be
                # applied over the stranded (logged but unapplied)
                # prefix.  Leave the queue undrained; stop()/flush()
                # report the loss.
                break
            ops = [item]
            stop_after = False
            while len(ops) < self._batch_size:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _STOP:
                    stop_after = True
                    break
                ops.append(nxt)
            if self._defer:
                self._dispatch_deferred(ops)
            else:
                self._apply_and_publish(ops)
            if stop_after:
                break

    def _next_item(self) -> object:
        """Blocking queue read; while DEGRADED, wake periodically to
        probe the failing checkpoint from the idle writer thread."""
        while True:
            if self._health != DEGRADED_DURABILITY:
                return self._queue.get()
            try:
                return self._queue.get(timeout=self._probe_wait)
            except queue.Empty:
                self._probe_checkpoint()

    def _probe_checkpoint(self) -> None:
        """Retry the failing checkpoint (writer thread, between
        batches, no repair in flight — the only window in which the
        live graph equals the published snapshot's capture state)."""
        dur = self._durability
        snap = self._published
        if dur is None or snap is None:  # pragma: no cover - defensive
            self._set_health(HEALTHY)
            return
        with self._defer_lock:
            if self._repair_thread is not None:
                # The repair thread owns the mutator window; its own
                # note_applied will heal the state on success.
                return
        try:
            with self._dur_lock:
                dur.checkpoint_now(snap)
        except OSError as exc:
            if exc.errno in _TRANSIENT_ERRNOS:
                with self._progress:
                    self._ckpt_failures += 1
                self._probe_wait = min(
                    self._probe_wait * 2, self._probe_max_backoff_s
                )
                return
            self._record_failure(exc)
            return
        except BaseException as exc:  # noqa: BLE001 - via flush()
            self._record_failure(exc)
            return
        self._probe_wait = self._probe_backoff_s
        self._set_health(HEALTHY)

    def _record_failure(
        self, exc: BaseException, ops: list[Op] | None = None
    ) -> None:
        """Record ``exc`` in the sticky failure slot; with ``ops``,
        also count that batch as consumed (it will never apply)."""
        with self._progress:
            # Keep the first *unreported* failure; once that one has
            # been raised to a caller, a newer failure replaces it so
            # the next flush surfaces fresh trouble too.
            if self._failure is None or self._failure_reported:
                self._failure = exc
                self._failure_reported = False
            if ops is not None:
                self._consumed += len(ops)
            self._progress.notify_all()

    def _log_batch(self, ops: list[Op]) -> tuple[int | None, bool]:
        """Durably log ``ops``; returns ``(seq, ok)``.

        Log-before-publish: the batch's ops and exact apply_batch
        framing hit the disk (and, under fsync="always", the platter)
        before the index is touched, so every epoch a reader can ever
        observe is reconstructible from the data dir.  Transient disk
        errors (``ENOSPC``/``EIO``) are retried with bounded backoff;
        exhausted retries park the batch and move the engine to
        ``read_only`` (see :meth:`_park_until_durable`).  Any other
        failure means no durability for this batch — it is dropped,
        not applied, and surfaces through the sticky record.
        """
        dur = self._durability
        if dur is None:
            return None, True
        attempts = 0
        backoff = self._io_backoff_s
        while True:
            try:
                with self._dur_lock:
                    seq = dur.log_batch(
                        ops, self._on_invalid, self._rebuild_threshold
                    )
            except OSError as exc:
                if exc.errno not in _TRANSIENT_ERRNOS:
                    self._record_failure(exc, ops)
                    return None, False
                with self._progress:
                    self._wal_failures += 1
                attempts += 1
                if attempts <= self._io_retries:
                    with self._progress:
                        self._io_retry_count += 1
                    time.sleep(backoff)
                    backoff = min(
                        backoff * 2, self._probe_max_backoff_s
                    )
                    continue
                return self._park_until_durable(dur, ops, exc)
            except BaseException as exc:  # noqa: BLE001 - via flush()
                self._record_failure(exc, ops)
                return None, False
            return seq, True

    def _park_until_durable(
        self, dur: DurabilityManager, ops: list[Op], cause: BaseException
    ) -> tuple[int | None, bool]:
        """Read-only outage: keep the batch parked (not lost, not
        acked) and probe the disk with exponential backoff until an
        append lands or the engine stops.  The WAL rolls back to a
        record boundary on every failed append, so the sequence number
        is reissued cleanly on each probe."""
        self._enter_read_only(cause)
        wait = self._probe_backoff_s
        while True:
            with self._lock:
                if self._stopping:
                    # Abandoned: deliberately NOT counted consumed, so
                    # stop() reports the loss instead of a clean stop.
                    return None, False
            time.sleep(wait)
            wait = min(wait * 2, self._probe_max_backoff_s)
            try:
                with self._dur_lock:
                    seq = dur.log_batch(
                        ops, self._on_invalid, self._rebuild_threshold
                    )
            except OSError as exc:
                if exc.errno in _TRANSIENT_ERRNOS:
                    with self._progress:
                        self._wal_failures += 1
                    continue
                self._record_failure(exc, ops)
                return None, False
            except BaseException as exc:  # noqa: BLE001 - via flush()
                self._record_failure(exc, ops)
                return None, False
            self._exit_read_only()
            return seq, True

    def _apply_and_publish(self, ops: list[Op]) -> None:
        seq, ok = self._log_batch(ops)
        if ok:
            self._apply_logged(ops, seq)

    def _dispatch_deferred(self, ops: list[Op]) -> None:
        """Deferred-mode routing (writer thread).

        The batch is logged first either way (WAL order == submission
        order, as in eager mode).  Then: while a background repair owns
        the mutator role, every batch is buffered for it; otherwise a
        batch with deletions spawns the repair thread and the writer
        moves on immediately, and a pure-insert batch is applied inline
        (INCCNT is cheap — deferring it would only delay the epoch).
        """
        seq, ok = self._log_batch(ops)
        if not ok:
            return
        with self._defer_lock:
            if self._repair_thread is not None:
                self._deferrals += 1
                self._pending.append((ops, seq))
                return
            if any(op == "delete" for op, _, _ in ops):
                self._deferrals += 1
                thread = threading.Thread(
                    target=self._repair_entry,
                    args=(ops, seq),
                    name="repro-serve-repair",
                    daemon=True,
                )
                self._repair_thread = thread
                thread.start()
                return
        self._apply_logged(ops, seq)

    def _repair_entry(self, ops: list[Op], seq: int | None) -> None:
        """Supervisor wrapper for the repair thread: per-batch failures
        are absorbed inside :meth:`_repair_worker`, but the *thread*
        dying (an escaping BaseException) is terminal — the buffered
        batches it owned can never be applied in order, so the engine
        moves to ``failed`` and flush()/stop() fail fast."""
        try:
            self._repair_worker(ops, seq)
        except BaseException as exc:  # noqa: BLE001 - thread supervisor
            with self._defer_lock:
                self._pending.clear()
                self._repair_thread = None
            self._fail_engine(exc)
            raise

    def _repair_worker(self, ops: list[Op], seq: int | None) -> None:
        """Background repair thread: applies its seed batch and then
        drains whatever the writer buffered meanwhile, in order, before
        handing the mutator role back (clearing ``_repair_thread``)."""
        while True:
            try:
                self._apply_logged(ops, seq, defer=True)
            except Exception as exc:  # noqa: BLE001 - backstop
                self._record_failure(exc, ops)
            with self._defer_lock:
                if not self._pending:
                    self._repair_thread = None
                    return
                ops, seq = self._pending.pop(0)

    # ------------------------------------------------------------------
    # Batch application (fault-classified)
    # ------------------------------------------------------------------
    def _abort_and_record(
        self, ops: list[Op], seq: int | None, exc: BaseException
    ) -> None:
        """The sticky path: mark the logged record aborted so recovery
        skips it, then record the failure (the batch is consumed)."""
        dur = self._durability
        if dur is not None and seq is not None:
            # apply_batch is atomic-on-raise, so the live state
            # excludes this batch; mark the logged record aborted so
            # recovery skips it too.  (Losing the marker is safe:
            # the same deterministic exception fires on replay.)
            try:
                with self._dur_lock:
                    dur.log_abort(seq)
            except BaseException:  # noqa: BLE001 - crash-equivalent
                pass
        self._record_failure(exc, ops)

    def _quarantine(
        self, ops: list[Op], seq: int | None, exc: BaseException
    ) -> None:
        """Poison-batch quarantine: WAL-abort the record, append the
        batch to the dead-letter log, count it consumed, and let the
        writer resume the stream — one bad batch must not take the
        service down."""
        dur = self._durability
        if dur is not None and seq is not None:
            try:
                with self._dur_lock:
                    dur.log_abort(seq)
            except BaseException:  # noqa: BLE001 - crash-equivalent
                pass
        letter = DeadLetter(
            seq=seq or 0,
            ops=tuple(ops),
            on_invalid=self._on_invalid,
            rebuild_threshold=self._rebuild_threshold,
            error=repr(exc),
        )
        if self._dead_letter is not None:
            # Losing the durable copy is like losing the abort marker:
            # tolerable — the in-memory record below still serves this
            # process, and recovery skips the batch either way.
            try:
                with self._dur_lock:
                    self._dead_letter.append(letter)
            except BaseException:  # noqa: BLE001 - crash-equivalent
                pass
        with self._progress:
            self._quarantined.append(letter)
            self._consumed += len(ops)
            self._progress.notify_all()

    def _apply_logged(
        self, ops: list[Op], seq: int | None, defer: bool = False
    ) -> None:
        dur = self._durability
        attempts = 0
        backoff = self._io_backoff_s
        while True:
            failure: BaseException | None = None
            transient = poison = False
            on_plan = None
            if defer:
                # Tombstone exactly the hubs whose fingerprints the
                # repair is about to invalidate, for exactly the
                # mutation window: set when the repair plan is known
                # (before any label or graph mutation), cleared when
                # apply_batch returns (the labels are clean again —
                # repaired, or swapped by the rebuild fallback).
                # Tombstones are in-memory only, so the WAL/recovery
                # path never sees them.
                index = self._counter.index
                store_in, store_out = index.store_in, index.store_out

                def on_plan(del_in: set[int], del_out: set[int]) -> None:
                    store_in.tombstone_hubs(del_in)
                    store_out.tombstone_hubs(del_out)
                    if self._on_defer is not None:
                        self._on_defer()

            try:
                try:
                    stats = self._counter.apply_batch(
                        ops,
                        rebuild_threshold=self._rebuild_threshold,
                        on_invalid=self._on_invalid,
                        workers=self._workers,
                        on_repair_plan=on_plan,
                    )
                finally:
                    if defer:
                        store_in.clear_tombstones()
                        store_out.clear_tombstones()
            except WorkerCrashError as exc:
                failure, transient = exc, True
            except OSError as exc:
                failure = exc
                transient = exc.errno in _TRANSIENT_ERRNOS
            except ReproError as exc:
                # Deterministic by construction: apply_batch raising a
                # library error is a property of the batch against this
                # graph state, not of the environment — it would raise
                # again on retry and on recovery replay.
                failure, poison = exc, True
            except BaseException as exc:  # noqa: BLE001 - via flush()
                failure = exc
            if failure is None:
                break
            if transient:
                attempts += 1
                if attempts <= self._io_retries:
                    with self._progress:
                        self._io_retry_count += 1
                    time.sleep(backoff)
                    backoff = min(
                        backoff * 2, self._probe_max_backoff_s
                    )
                    continue
                self._abort_and_record(ops, seq, failure)
                return
            if poison and self._on_poison == "quarantine":
                self._quarantine(ops, seq, failure)
                return
            self._abort_and_record(ops, seq, failure)
            return
        try:
            prev = self._published
            snap = Snapshot.capture(
                self._counter,
                epoch=(prev.epoch if prev is not None else 0) + 1,
                ops_applied=self._base_ops + self._consumed + len(ops),
            )
            # Publication order: observers first, so any state they
            # derive (alert bookkeeping, recorded ground truth) exists
            # before a reader can see the epoch.
            if self._on_publish is not None:
                self._on_publish(snap)
            if self._monitor is not None:
                self._monitor.observe_snapshot(snap)
        except BaseException as exc:  # noqa: BLE001 - reported via flush()
            # The batch IS applied (and logged); only publication
            # failed.  No abort record — recovery must replay it.
            self._record_failure(exc, ops)
            return
        self._published = snap
        with self._progress:
            self._consumed += len(ops)
            self._edges_applied += stats.applied
            self._skipped += len(stats.skipped)
            self._batches += 1
            self._rebuilds += int(stats.rebuilt)
            self._progress.notify_all()
        if dur is not None:
            # Checkpoint *after* publication, from the published frozen
            # snapshot, between batches — the only window in which the
            # live graph still equals the snapshot's capture state.  In
            # deferred mode the applying thread *is* the sole mutator
            # here (the writer only logs and buffers while a repair is
            # alive), so the window argument holds unchanged.
            try:
                with self._dur_lock:
                    checkpointed = dur.note_applied(seq, snap)
            except OSError as exc:
                if exc.errno in _TRANSIENT_ERRNOS:
                    # The batch is logged, applied, published, and
                    # acked — only the checkpoint failed.  Degrade
                    # (recovery just replays a longer WAL) and let the
                    # idle probe / the next note_applied climb back.
                    with self._progress:
                        self._ckpt_failures += 1
                        if self._health == HEALTHY:
                            self._health = DEGRADED_DURABILITY
                        self._progress.notify_all()
                else:
                    self._record_failure(exc)
            except BaseException as exc:  # noqa: BLE001 - via flush()
                self._record_failure(exc)
            else:
                if checkpointed and self._health == DEGRADED_DURABILITY:
                    self._set_health(HEALTHY)
