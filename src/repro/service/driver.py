"""Mixed read/write driver: N reader threads vs the single writer.

Shared by ``repro serve`` (CLI) and ``benchmarks/bench_serve.py``: start
a :class:`ServeEngine`, hammer the published snapshots with ``sccnt``
queries from ``readers`` threads while the writer drains an update
stream, and report aggregate read throughput over exactly the writer's
drain window — the serving-level number the paper's "real-time" claim
is about.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.counter import ShortestCycleCounter
from repro.errors import ConfigurationError, BackpressureError, EngineReadOnlyError
from repro.graph.digraph import DiGraph
from repro.service.config import ServeConfig
from repro.service.engine import Op, ServeEngine, ServeStats
from repro.service.snapshot import Snapshot

__all__ = [
    "DriveResult",
    "drive_mixed",
    "idle_read_throughput",
    "serial_replay",
]

#: Queries a reader answers per snapshot fetch; amortizes the (cheap but
#: not free) snapshot attribute read and epoch bookkeeping.
_BURST = 64


@dataclass
class DriveResult:
    """Outcome of one mixed serving run."""

    #: update ops submitted to the writer
    ops: int = 0
    #: wall-clock seconds the writer took to drain them
    drain_seconds: float = 0.0
    #: queries answered per reader thread during the drain window
    reader_queries: list[int] = field(default_factory=list)
    #: aggregate reader throughput over the drain window (queries/sec)
    queries_per_second: float = 0.0
    #: distinct epochs readers observed (monotonicity is asserted)
    epochs_seen: int = 0
    #: engine counters at the end of the run
    stats: ServeStats | None = None
    #: the final published snapshot
    final: Snapshot | None = None
    #: exceptions raised inside reader threads (must be empty)
    errors: list[str] = field(default_factory=list)
    #: WAL/checkpoint counters for durable runs (``data_dir`` given)
    durability: object | None = None
    #: ops actually admitted by bounded admission (== ``ops`` without a
    #: ``max_queue_depth``)
    ops_admitted: int = 0
    #: ops dropped under the ``"shed"`` backpressure policy
    ops_shed: int = 0
    #: ops refused with BackpressureError / EngineReadOnlyError
    ops_rejected: int = 0


def idle_read_throughput(
    counter: ShortestCycleCounter,
    vertices: Sequence[int],
    min_seconds: float = 0.3,
) -> float:
    """Single-threaded ``sccnt`` queries/sec over a snapshot with no
    writer running — the baseline the serving ratio is measured against."""
    snap = counter.snapshot()
    count = snap.count
    done = 0
    t0 = time.perf_counter()
    while True:
        for v in vertices:
            count(v)
        done += len(vertices)
        elapsed = time.perf_counter() - t0
        if elapsed >= min_seconds:
            return done / elapsed


def serial_replay(
    graph: DiGraph,
    ops: Sequence[Op],
    strategy: str = "redundancy",
) -> ShortestCycleCounter:
    """The serving engine's correctness reference: build a counter over
    ``graph`` and apply ``ops`` strictly serially, one edge at a time.

    Every published epoch must answer bit-identically to the serial
    replay of its op prefix; the CLI's ``--verify``, the serving
    benchmark's correctness gate, and the test suites all compare
    against this."""
    counter = ShortestCycleCounter.build(graph, strategy=strategy)
    for op, tail, head in ops:
        if op == "insert":
            counter.insert_edge(tail, head)
        else:
            counter.delete_edge(tail, head)
    return counter


def drive_mixed(
    source: DiGraph | ShortestCycleCounter | ServeEngine,
    ops: Sequence[Op],
    *,
    readers: int = 2,
    batch_size: int = 16,
    query_vertices: Sequence[int] | None = None,
    strategy: str | None = None,
    bulk_batch: int | None = None,
    config: ServeConfig | None = None,
    query_backend=None,
    **engine_kwargs,
) -> DriveResult:
    """Run ``ops`` through a serving engine while ``readers`` threads
    query published snapshots; returns throughput and consistency data.

    Reader threads pin a snapshot, answer a burst of ``sccnt`` queries
    against it, and re-fetch — observing that epochs never go backwards.
    Only queries answered before the writer finishes draining count
    toward the reported throughput.  With ``bulk_batch`` set, each
    burst is one :meth:`Snapshot.count_many` call over that many
    vertices (the vectorized read path) instead of ``_BURST`` scalar
    calls.  ``source`` may be a *not-yet-started* :class:`ServeEngine`
    (so callers can open a durable engine first and generate ``ops``
    against its possibly-recovered graph); a full
    :class:`~repro.service.ServeConfig` may be passed as ``config`` (it
    wins over ``strategy``/``batch_size``), or flat engine keywords
    pass through :meth:`ServeConfig.from_kwargs` when the engine is
    built here.

    ``query_backend`` points the reader threads at any other
    :class:`~repro.service.QueryAPI` implementation — e.g. a
    :class:`repro.cluster.ClusterRouter` over replica processes —
    instead of the engine's own published snapshots, so the same driver
    measures local and clustered read paths.
    """
    if bulk_batch is not None and bulk_batch < 1:
        raise ConfigurationError("bulk_batch must be at least 1")
    if readers < 1:
        raise ConfigurationError("readers must be at least 1")
    if isinstance(source, ServeEngine):
        if engine_kwargs or config is not None:
            raise ConfigurationError(
                "engine configuration "
                f"{sorted(engine_kwargs) or '(config=...)'} cannot be "
                "applied to an already-constructed ServeEngine source; "
                "configure the engine directly (strategy/batch_size are "
                "likewise taken from the engine)"
            )
        engine = source
    else:
        if config is None:
            config = ServeConfig.from_kwargs(
                strategy=strategy, batch_size=batch_size, **engine_kwargs
            )
        elif engine_kwargs:
            raise ConfigurationError(
                "pass either config=ServeConfig(...) or flat engine "
                "kwargs, not both: "
                f"{', '.join(sorted(engine_kwargs))}"
            )
        engine = ServeEngine(source, config=config)
    counter = engine.counter
    if query_vertices is None:
        n = counter.graph.n
        query_vertices = range(n)
    vs = list(query_vertices)
    if not vs:
        raise ConfigurationError("no query vertices")

    result = DriveResult(ops=len(ops))
    stop = threading.Event()
    drained = threading.Event()
    counts = [0] * readers
    epochs: set[int] = set()

    def reader(slot: int) -> None:
        k = len(vs)
        j = slot  # de-phase readers so they don't scan in lockstep
        local = 0
        at_drain = 0
        last_epoch = -1
        try:
            while not stop.is_set():
                # Pin one backend state per burst: a published snapshot,
                # or the external QueryAPI backend (whose epoch is read
                # once per burst — e.g. a router's consistency floor).
                backend = (
                    engine.snapshot()
                    if query_backend is None
                    else query_backend
                )
                epoch = backend.epoch
                if epoch < last_epoch:
                    raise AssertionError(
                        f"epoch went backwards: {last_epoch} -> {epoch}"
                    )
                last_epoch = epoch
                epochs.add(epoch)
                if bulk_batch is None:
                    count = backend.sccnt
                    for _ in range(_BURST):
                        count(vs[j % k])
                        j += 1
                    local += _BURST
                else:
                    backend.sccnt_many(
                        [vs[(j + t) % k] for t in range(bulk_batch)]
                    )
                    j += bulk_batch
                    local += bulk_batch
                if not drained.is_set():
                    at_drain = local
        except BaseException as exc:  # noqa: BLE001 - surfaced in result
            result.errors.append(f"reader {slot}: {exc!r}")
        counts[slot] = at_drain

    threads = [
        threading.Thread(target=reader, args=(i,), daemon=True)
        for i in range(readers)
    ]
    if not engine.running:
        # An already-running source (e.g. a cluster primary whose
        # replicas bootstrapped at start) is driven as-is; it is still
        # stopped on the way out like any other.
        engine.start()
    for t in threads:
        t.start()
    try:
        t0 = time.perf_counter()
        # Per-op submission so bounded admission is observable: shed
        # ops return False, rejected ops raise typed errors — both are
        # counted instead of aborting the run (the client owns retry).
        for op, tail, head in ops:
            try:
                if engine.submit(op, tail, head):
                    result.ops_admitted += 1
                else:
                    result.ops_shed += 1
            except (BackpressureError, EngineReadOnlyError):
                result.ops_rejected += 1
        final = engine.flush()
        drain = time.perf_counter() - t0
    finally:
        # A writer failure must not strand the reader threads in their
        # busy loops (nor leave the engine running).
        drained.set()
        stop.set()
        for t in threads:
            t.join()
        engine.stop()

    result.drain_seconds = drain
    result.reader_queries = counts
    result.queries_per_second = sum(counts) / drain if drain else 0.0
    result.epochs_seen = len(epochs)
    result.stats = engine.stats()
    result.final = final
    result.durability = engine.durability_stats()
    return result
