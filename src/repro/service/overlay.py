"""Correctness-preserving query overlay for deferred deletion repair.

When :class:`~repro.service.ServeEngine` runs in ``defer_deletions``
mode, a deletion batch's DECCNT repair (or rebuild fallback) happens on
a background thread while the live label stores carry tombstones for the
affected hubs.  Readers never see that window: they keep answering from
the last *clean* published snapshot.  :class:`DeferredOverlay` packages
that snapshot together with the staleness metadata — which hub positions
are pending repair, and how many submitted ops have not reached a
published epoch yet — so a client can both query correctly and observe
that it is reading slightly behind the ingest point.

The overlay is a point-in-time value object: capture one per read
session via :meth:`ServeEngine.overlay`; it never blocks on the writer
or the repair thread.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.types import CycleCount, PathCount

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.snapshot import Snapshot

__all__ = ["DeferredOverlay"]


class DeferredOverlay:
    """A clean snapshot plus the deferred-repair staleness it hides.

    Queries delegate to the wrapped :class:`Snapshot` — the last epoch
    whose labels were fully repaired — so results are always correct for
    that epoch; :attr:`stale` tells the caller whether a repair is in
    flight behind it.
    """

    __slots__ = ("snapshot", "stale_in_hubs", "stale_out_hubs",
                 "pending_ops")

    def __init__(
        self,
        snapshot: Snapshot,
        stale_in_hubs: frozenset[int] = frozenset(),
        stale_out_hubs: frozenset[int] = frozenset(),
        pending_ops: int = 0,
    ) -> None:
        #: the last clean published epoch (all queries answer from it)
        self.snapshot = snapshot
        #: hub positions whose forward fingerprints are pending repair
        self.stale_in_hubs = frozenset(stale_in_hubs)
        #: hub positions whose backward fingerprints are pending repair
        self.stale_out_hubs = frozenset(stale_out_hubs)
        #: submitted ops not yet reflected in any published epoch
        self.pending_ops = pending_ops

    # ------------------------------------------------------------------
    @property
    def stale(self) -> bool:
        """Whether a deferred repair window is open behind the epoch
        this overlay answers from."""
        return bool(
            self.stale_in_hubs or self.stale_out_hubs or self.pending_ops
        )

    @property
    def epoch(self) -> int:
        """The epoch every query is answered at."""
        return self.snapshot.epoch

    # ------------------------------------------------------------------
    # Query delegation (always against the clean snapshot)
    # ------------------------------------------------------------------
    def count(self, v: int) -> CycleCount:
        """``SCCnt(v)`` at :attr:`epoch`."""
        return self.snapshot.count(v)

    def count_many(self, vertices: Sequence[int]) -> list[CycleCount]:
        """Batch form of :meth:`count`."""
        return self.snapshot.count_many(vertices)

    def sccnt(self, v: int) -> CycleCount:
        """:class:`~repro.service.QueryAPI` spelling of :meth:`count`."""
        return self.snapshot.count(v)

    def sccnt_many(self, vertices: Sequence[int]) -> list[CycleCount]:
        """:class:`~repro.service.QueryAPI` spelling of
        :meth:`count_many`."""
        return self.snapshot.count_many(vertices)

    def spcnt(self, x: int, y: int) -> PathCount:
        """``SPCnt(x, y)`` at :attr:`epoch`."""
        return self.snapshot.spcnt(x, y)

    def spcnt_many(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[PathCount]:
        """Batch form of :meth:`spcnt`."""
        return self.snapshot.spcnt_many(pairs)

    def top_suspicious(self, k: int = 10) -> list[tuple[int, CycleCount]]:
        """The paper's fraud pre-screen, at :attr:`epoch`."""
        return self.snapshot.top_suspicious(k)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeferredOverlay(epoch={self.epoch}, stale={self.stale}, "
            f"stale_hubs={len(self.stale_in_hubs)}+"
            f"{len(self.stale_out_hubs)}, pending_ops={self.pending_ops})"
        )
