"""Snapshot-isolated concurrent serving (single writer / many readers).

The paper's motivating deployment is a live transaction stream where
``SCCnt`` queries race edge updates.  The core index is maintained by a
strictly serial algorithm — a long BATCH-DECCNT repair would block every
query — so this package splits the two sides the way dynamic labeling
systems do (stable/versioned labels): **readers never see the index
being repaired, only immutable published snapshots of it**.

Architecture
------------

::

    clients                 ServeEngine                    readers
    -------                 -----------                    -------
    submit(op) ──► update queue ──► writer thread      N threads
                                      │ drain ≤ batch_size ops
                                      │ counter.apply_batch()
                                      │   (BATCH-INCCNT/DECCNT)
                                      ▼
                              Snapshot.capture()  ── epoch k+1
                                      │ (CycleMonitor / on_publish
                                      │  observe the epoch first)
                                      ▼
                         published ◄──┘        snapshot() ──► sccnt
                         (atomic swap)                        spcnt
                                                              top_suspicious

Snapshot lifecycle
------------------

* ``Snapshot.capture`` goes through :meth:`CSCIndex.snapshot` →
  :meth:`LabelStore.snapshot`: O(n) pointer copies; all label data —
  packed ``array('Q')`` payloads, overflow tables, resident query
  accelerators — is *shared* with the live store.
* The live store then copy-on-writes at per-vertex granularity: the
  writer's first mutation of a vertex since the snapshot clones just
  that vertex's structures, so a snapshot costs O(dirty vertices) over
  its lifetime, never a full copy.
* The snapshot itself is frozen (mutations raise
  :class:`~repro.errors.FrozenSnapshotError`) and self-contained for
  queries — it never reads the live graph — which is what makes it safe
  to read from any number of threads while the writer repairs.
* Publication is a single attribute swap; readers pin whatever epoch
  they grabbed and upgrade on their next ``snapshot()`` call.  Old
  epochs are garbage-collected once no reader holds them.

Thread contract: exactly one thread (the engine's writer) mutates the
counter and takes snapshots; any number of threads read published
snapshots.  :meth:`CycleMonitor.observe_snapshot` evaluates alert
crossings once per published epoch, on the writer thread, before the
epoch becomes visible.
"""

from collections.abc import Sequence
from typing import Protocol, runtime_checkable

from repro.types import CycleCount, PathCount

from repro.service.config import (
    AdmissionConfig,
    DeferConfig,
    DurabilityConfig,
    RetryConfig,
    ServeConfig,
    add_config_arguments,
    config_from_args,
    load_config_file,
)
from repro.service.driver import (
    DriveResult,
    drive_mixed,
    idle_read_throughput,
    serial_replay,
)
from repro.service.engine import ServeEngine, ServeStats
from repro.service.overlay import DeferredOverlay
from repro.service.snapshot import Snapshot

__all__ = [
    "AdmissionConfig",
    "DeferConfig",
    "DeferredOverlay",
    "DriveResult",
    "DurabilityConfig",
    "QueryAPI",
    "RetryConfig",
    "ServeConfig",
    "ServeEngine",
    "ServeStats",
    "Snapshot",
    "add_config_arguments",
    "config_from_args",
    "drive_mixed",
    "idle_read_throughput",
    "load_config_file",
    "serial_replay",
]


@runtime_checkable
class QueryAPI(Protocol):
    """The uniform read surface every query backend implements.

    One protocol, four implementations with very different machinery
    behind the same answers:

    * :class:`Snapshot` — an immutable published epoch (the serving
      engine's read primitive);
    * :class:`DeferredOverlay` — the last *clean* epoch plus deferred
      repair staleness metadata;
    * :class:`~repro.core.counter.ShortestCycleCounter` — the live
      single-threaded counter (``epoch`` counts applied updates);
    * :class:`repro.cluster.ReplicaClient` — a replica process answering
      over a pipe from its own tailed copy of the primary's WAL.

    Clients written against this protocol (``drive_mixed`` readers, the
    monitor, the benchmarks) run unmodified against local or clustered
    backends.  ``epoch`` is the backend's state version: monotone per
    backend, and two backends at the same epoch answer bit-identically.
    """

    @property
    def epoch(self) -> int: ...

    def sccnt(self, v: int) -> CycleCount: ...

    def sccnt_many(self, vertices: Sequence[int]) -> list[CycleCount]: ...

    def spcnt(self, x: int, y: int) -> PathCount: ...

    def spcnt_many(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[PathCount]: ...

    def top_suspicious(self, k: int = 10) -> list[tuple[int, CycleCount]]: ...
