"""Health states of the serving engine's self-healing state machine.

The engine distinguishes *how broken* it is so reads can keep flowing
through every fault the taxonomy knows how to survive:

``HEALTHY``
    Durable acknowledgement works; writes admitted normally.

``DEGRADED_DURABILITY``
    The WAL is acking but **checkpointing** is failing (``ENOSPC`` /
    ``EIO``).  Writes are still durably logged and applied; recovery
    just has a longer WAL replay ahead of it.  A background probe
    retries the checkpoint and climbs back to ``HEALTHY``.

``READ_ONLY``
    WAL appends themselves keep failing past the bounded retries, so
    the engine can no longer durably ack writes.  New writes are
    rejected with :class:`~repro.errors.EngineReadOnlyError`; readers
    keep answering from the last published epoch.  The in-flight batch
    is parked (not lost, not acked) and a probe with exponential
    backoff retries the append; success re-admits writes.

``FAILED``
    A mutator-role thread (the writer or the deferred-repair worker)
    died with an unclassifiable error.  Reads raise the sticky failure;
    the process should be restarted and recovered from disk.

Ordering is by severity; ``severity()`` gives the comparable rank.
"""

from __future__ import annotations

__all__ = [
    "DEGRADED_DURABILITY",
    "FAILED",
    "HEALTHY",
    "READ_ONLY",
    "severity",
]

HEALTHY = "healthy"
DEGRADED_DURABILITY = "degraded_durability"
READ_ONLY = "read_only"
FAILED = "failed"

_SEVERITY = {HEALTHY: 0, DEGRADED_DURABILITY: 1, READ_ONLY: 2, FAILED: 3}


def severity(state: str) -> int:
    """Rank of a health state (higher is worse); raises on unknown."""
    return _SEVERITY[state]
