"""Immutable, epoch-stamped query snapshots (the reader side).

A :class:`Snapshot` is what the serving engine publishes after each
update batch and what every reader thread queries.  It captures the
counter's label state through :meth:`CSCIndex.snapshot` (copy-on-write,
O(n) pointers) plus the scalar graph facts queries need (``n``, ``m``),
so it keeps answering from the captured state no matter how far the
live counter advances — and it never reads the live graph, which is the
property that makes it safe to share across threads.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.errors import VertexError
from repro.types import CycleCount, PathCount

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.counter import ShortestCycleCounter
    from repro.core.csc import CSCIndex

__all__ = ["Snapshot"]


class Snapshot:
    """A frozen view of a :class:`ShortestCycleCounter` at one instant.

    Attributes
    ----------
    epoch:
        Publication sequence number (0 = the state at engine start; each
        applied batch publishes the next epoch).
    ops_applied:
        Total update ops consumed from the queue up to this snapshot.
    n, m:
        Vertex and edge counts of the graph at capture time.
    """

    __slots__ = ("index", "epoch", "ops_applied", "n", "m")

    def __init__(
        self,
        index: CSCIndex,
        n: int,
        m: int,
        epoch: int = 0,
        ops_applied: int = 0,
    ) -> None:
        self.index = index
        self.n = n
        self.m = m
        self.epoch = epoch
        self.ops_applied = ops_applied

    @classmethod
    def capture(
        cls,
        counter: ShortestCycleCounter,
        epoch: int = 0,
        ops_applied: int = 0,
    ) -> Snapshot:
        """Snapshot ``counter``'s current state (single-writer thread
        only; see :meth:`CSCIndex.snapshot`)."""
        graph = counter.graph
        return cls(
            counter.index.snapshot(), graph.n, graph.m, epoch, ops_applied
        )

    # ------------------------------------------------------------------
    # Queries (same semantics as the live counter, at the captured state)
    # ------------------------------------------------------------------
    def _check(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise VertexError(v, self.n)

    def count(self, v: int) -> CycleCount:
        """``SCCnt(v)`` at the captured state."""
        self._check(v)
        return self.index.sccnt(v)

    def count_many(self, vertices: Sequence[int]) -> list[CycleCount]:
        """Batch form of :meth:`count` (vectorized when NumPy is
        available; raises :class:`~repro.errors.BatchVertexError` — a
        :class:`VertexError` — naming every out-of-range id)."""
        return self.index.sccnt_many(vertices)

    #: :class:`~repro.service.QueryAPI` spellings (true aliases — no
    #: extra call frame on the hot read path)
    sccnt = count
    sccnt_many = count_many

    def spcnt(self, x: int, y: int) -> PathCount:
        """``SPCnt(x, y)`` at the captured state."""
        self._check(x)
        self._check(y)
        return self.index.spcnt(x, y)

    def spcnt_many(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[PathCount]:
        """Batch form of :meth:`spcnt` (same contract as
        :meth:`count_many`)."""
        return self.index.spcnt_many(pairs)

    def top_suspicious(self, k: int = 10) -> list[tuple[int, CycleCount]]:
        """The ``k`` most-cycled vertices at the captured state (same
        tie-breaking as :meth:`ShortestCycleCounter.top_suspicious`)."""
        sccnt = self.index.sccnt
        scored = [(v, sccnt(v)) for v in range(self.n)]
        scored.sort(key=lambda item: (-item[1].count, item[1].length, item[0]))
        return scored[:k]

    def __repr__(self) -> str:
        return (
            f"Snapshot(epoch={self.epoch}, ops_applied={self.ops_applied}, "
            f"n={self.n}, m={self.m})"
        )
