"""Vectorized bulk-query kernels over the packed label store.

The packed ``array('Q')`` layout from :mod:`repro.labeling.labelstore`
is one cast away from NumPy ``uint64`` views: concatenating the
per-vertex words into one flat column plus an ``offsets`` prefix-sum
gives the flat-parallel-array shape the C++ hub-labeling exemplars use,
and the 23/17/24-bit fields fall out with a shift and a mask.  On top
of that view :func:`sccnt_many` and :func:`spcnt_many` evaluate
thousands of queries per call with *no Python-level per-pair loop*:

- duplicate queries are answered once (``np.unique`` — SCCnt/SPCnt are
  pure functions of their ids, and batched serving traffic repeats hot
  vertices);
- the iterate side of each merge-join is scanned in distance-sorted
  chunks across *all* live queries at once (a vectorized wavefront),
  with per-query early exit on the same ``d > best`` bound the scalar
  kernels use — chunks double geometrically so stragglers finish in
  O(log) rounds;
- each chunk probes the other side through a per-batch dense
  ``(vertex, hub) -> row`` matrix (one O(1) gather per probe) or,
  above a size cap, a binary search on the per-epoch global sorted
  ``(vertex << VERTEX_BITS) | hub`` key column — hubs are 23-bit, so
  the composite key is exact in ``uint64`` and sorted by construction.

Exactness: vectorized counts are the raw 24-bit fields, which saturate
at ``COUNT_SATURATED`` (the exact value then lives in the store's
overflow dict and may exceed ``uint64``).  Any query whose best
distance is witnessed by a saturated entry — and any query with more
best-distance terms than the uint64-safe bound — is re-answered by the
scalar kernel, which consults the overflow tables.  The bulk results
are therefore bit-identical to a scalar loop by construction.

NumPy is an *optional* dependency: when it is absent (or
``REPRO_NO_NUMPY`` is set) the same entry points validate, then fall
back to the scalar kernels, so behavior — including the typed
whole-batch :class:`~repro.errors.BatchVertexError` validation and the
:class:`~repro.errors.StaleLabelError` tombstone check — is identical
either way.

``workers > 1`` fans a batch out across the PR 4 forkserver pool: the
frozen stores cross the pipe in the RPLS per-vertex memcpy format
(``LabelStore.to_bytes`` — one ``memcpy`` per vertex, no per-entry
pickling) and each worker answers its contiguous chunk with these same
kernels.
"""

from __future__ import annotations

import os
from operator import index as _as_int
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.errors import BatchVertexError, StaleLabelError
from repro.labeling.labelstore import COUNT_SATURATED, LabelStore
from repro.labeling.packing import COUNT_BITS, DISTANCE_BITS, VERTEX_BITS
from repro.types import NO_CYCLE, NO_PATH, CycleCount, PathCount

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.csc import CSCIndex

try:  # pragma: no cover - exercised by the no-numpy CI leg
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled via REPRO_NO_NUMPY")
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

UNREACHED = 1 << 60  # mirrors labelstore.UNREACHED (probe-miss sentinel)

_DIST_MASK = (1 << DISTANCE_BITS) - 1
_COUNT_MASK = (1 << COUNT_BITS) - 1

# Non-saturated counts are <= 2^24 - 2, so a meet-count product is
# < 2^48 and a sum of up to 2^15 products stays < 2^63: safely exact in
# uint64.  Queries with more best-distance terms fall back to scalar.
_SAFE_TERMS = 1 << 15

# Ceiling on (unique probe vertices) x (store vertices) for the dense
# probe matrix (int32 entries; 2^23 entries = 32 MiB).  Batches over
# that fall back to binary search on the global probe-key column.
_PROBE_MATRIX_CAP = 1 << 23

# Iterate-side rows consumed per query in the first wavefront round.
# Most queries settle in one or two rounds (the distance-sorted prefix
# contains the meet hubs), so a small first chunk keeps the touched-row
# total close to the scalar early-exit scan; the chunk then doubles per
# round (capped) so stragglers — e.g. unreachable pairs, which must
# scan their whole segment — finish in O(log) rounds instead of paying
# per-round overhead linearly.
_CHUNK = 8
_CHUNK_MAX = 256

#: SPCnt(x, x) — the empty path (shared: PathCount is immutable).
_PATH_SELF = PathCount(1, 0)


def numpy_available() -> bool:
    """True when the vectorized backend is active (NumPy importable and
    not disabled via ``REPRO_NO_NUMPY``)."""
    return _np is not None


# ---------------------------------------------------------------------------
# Column projection of a LabelStore (lazily cached on the store)
# ---------------------------------------------------------------------------


class StoreColumns:
    """Flat NumPy projection of one :class:`LabelStore`.

    Label-order columns (``hubs`` sorted within each vertex segment)
    plus two lazily derived views: a global sorted probe-key column for
    ``searchsorted`` hub lookups, and a distance-sorted per-segment
    permutation for the early-exit wavefront scan.

    Content-immutable once built: the words are an eager copy, so a
    projection built on a live store stays valid for the frozen
    snapshots that store spawned (``LabelStore.snapshot`` shares it)
    while the live store drops its own reference on the next mutation.
    """

    __slots__ = ("offsets", "hubs", "dists", "counts", "sat",
                 "_canon", "_flags", "_probe_keys", "_bydist")

    @property
    def probe_keys(self):
        """Global sorted ``(vertex << VERTEX_BITS) | hub`` key column in
        label order — one binary search resolves any (vertex, hub) pair
        to its flat row."""
        keys = self._probe_keys
        if keys is None:
            np = _np
            seg = np.repeat(
                np.arange(len(self.offsets) - 1, dtype=np.uint64),
                np.diff(self.offsets),
            )
            keys = (seg << np.uint64(VERTEX_BITS)) | self.hubs
            self._probe_keys = keys
        return keys

    @property
    def bydist(self):
        """``(hubs, dists, counts, sat)`` re-ordered distance-ascending
        within each vertex segment (segment boundaries unchanged) — the
        iterate-side layout for the early-exit wavefront."""
        view = self._bydist
        if view is None:
            np = _np
            seg = np.repeat(
                np.arange(len(self.offsets) - 1, dtype=np.int64),
                np.diff(self.offsets),
            )
            order = np.lexsort((self.dists, seg))
            view = (self.hubs[order], self.dists[order],
                    self.counts[order], self.sat[order])
            self._bydist = view
        return view

    @property
    def flags(self):
        """Canonical-flag column, decoded lazily from the per-vertex
        Python-int bitsets captured at build time."""
        f = self._flags
        if f is None:
            np = _np
            f = np.zeros(len(self.hubs), dtype=bool)
            offsets = self.offsets
            for v, bits in enumerate(self._canon):
                if bits:
                    lo = int(offsets[v])
                    k = int(offsets[v + 1]) - lo
                    nbytes = max((k + 7) // 8, (bits.bit_length() + 7) // 8)
                    raw = np.frombuffer(
                        bits.to_bytes(nbytes, "little"), dtype=np.uint8
                    )
                    f[lo:lo + k] = np.unpackbits(
                        raw, bitorder="little", count=k
                    ).view(bool)
            self._flags = f
        return f


def store_columns(store: LabelStore) -> StoreColumns:
    """Return the store's cached column projection, building it on first
    use.  Mutating methods invalidate the cache; frozen snapshots share
    the projection of the store they were taken from."""
    cols = store._cols
    if cols is None:
        cols = store.cache_columns(_build_columns(store))
    return cols


def _build_columns(store: LabelStore) -> StoreColumns:
    np = _np
    packed = store.packed
    n = len(packed)
    lens = np.fromiter((len(a) for a in packed), dtype=np.int64, count=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lens, out=offsets[1:])
    words = np.empty(int(offsets[-1]), dtype=np.uint64)
    at = 0
    for arr in packed:
        k = len(arr)
        if k:
            # array('Q') is native-endian 64-bit: a straight buffer cast.
            words[at:at + k] = np.frombuffer(arr, dtype=np.uint64)
            at += k
    cols = StoreColumns()
    cols.offsets = offsets
    cols.hubs = words >> np.uint64(DISTANCE_BITS + COUNT_BITS)
    cols.dists = (words >> np.uint64(COUNT_BITS)) & np.uint64(_DIST_MASK)
    cols.counts = words & np.uint64(_COUNT_MASK)
    cols.sat = cols.counts == np.uint64(COUNT_SATURATED)
    cols._canon = list(store.canon)  # ints are immutable: cheap capture
    cols._flags = None
    cols._probe_keys = None
    cols._bydist = None
    return cols


# ---------------------------------------------------------------------------
# Validation (shared by the NumPy and fallback paths)
# ---------------------------------------------------------------------------


def _check_stale(index: CSCIndex) -> None:
    if index.store_in._stale or index.store_out._stale:
        raise StaleLabelError(
            "labels have deferred-repair tombstones; query a clean "
            "snapshot until the background repair completes"
        )


def _coerce_vertices(vertices: Sequence[int], n: int) -> list[int]:
    # operator.index mirrors list-subscript coercion (rejects floats,
    # accepts NumPy integers); the range check is whole-batch so a bad
    # id can never surface as a mid-batch IndexError from a gather.
    vs = [_as_int(v) for v in vertices]
    bad = [(i, v) for i, v in enumerate(vs) if not 0 <= v < n]
    if bad:
        raise BatchVertexError(bad, n)
    return vs


def _coerce_pairs(
    pairs: Sequence[tuple[int, int]], n: int
) -> tuple[list[int], list[int]]:
    xs: list[int] = []
    ys: list[int] = []
    for x, y in pairs:
        xs.append(_as_int(x))
        ys.append(_as_int(y))
    bad = [
        (i, v)
        for i, xy in enumerate(zip(xs, ys))
        for v in xy
        if not 0 <= v < n
    ]
    if bad:
        raise BatchVertexError(bad, n)
    return xs, ys


def _as_id_array(vertices: Sequence[int], n: int):
    """Vectorized variant of :func:`_coerce_vertices` returning an int64
    array; falls back to the element-wise path for exotic inputs so the
    error behavior (TypeError for floats, BatchVertexError naming every
    offender) is identical."""
    np = _np
    try:
        arr = np.asarray(vertices)
    except Exception:
        return np.asarray(_coerce_vertices(vertices, n), dtype=np.int64)
    if arr.ndim != 1 or arr.dtype.kind not in "iu":
        return np.asarray(_coerce_vertices(vertices, n), dtype=np.int64)
    arr = arr.astype(np.int64, copy=False)
    bad = np.nonzero((arr < 0) | (arr >= n))[0]
    if len(bad):
        raise BatchVertexError([(int(i), int(arr[i])) for i in bad], n)
    return arr


# ---------------------------------------------------------------------------
# Wavefront join engine
# ---------------------------------------------------------------------------


def _segment_gather(begin, end):
    """Flat row positions and query ids for per-query segments.

    ``begin``/``end`` are int64 arrays (one segment per query, slices
    into a column).  Returns ``(pos, qid)`` where ``pos[j]`` is the flat
    column row of the j-th gathered entry and ``qid`` is nondecreasing.
    """
    np = _np
    lens = end - begin
    total = int(lens.sum())
    qid = np.repeat(np.arange(len(begin), dtype=np.int64), lens)
    starts = np.cumsum(lens) - lens
    pos = np.repeat(begin - starts, lens) + np.arange(total, dtype=np.int64)
    return pos, qid


def _probe(pcols: StoreColumns, keys):
    """Rows of ``pcols`` whose probe key equals ``keys[i]`` (or -1)."""
    np = _np
    pkeys = pcols.probe_keys
    if not len(pkeys) or not len(keys):
        return np.full(len(keys), -1, dtype=np.int64)
    at = np.searchsorted(pkeys, keys)
    hit = pkeys[np.minimum(at, len(pkeys) - 1)] == keys
    return np.where(hit, at, -1)


def _wave_join(icols: StoreColumns, pcols: StoreColumns, iv, pv,
               shift: int, px=None):
    """Early-exit merge-join of one batch of (iterate, probe) vertex
    pairs: scans ``icols``'s segments of ``iv`` distance-ascending in
    chunks, probing ``pcols``'s segments of ``pv`` by hub, pruning each
    query once its next iterate distance can no longer reach its best.

    ``shift`` is added to every joined distance (0 for SCCnt, 1 for
    SPCnt's couple edge).  ``px`` (SPCnt) names a per-query hub to skip
    on the iterate side — the couple hub, contributed separately via a
    direct probe at derived distance 0.

    Returns ``(best, total, redo)`` per query; ``redo`` flags queries
    whose best distance involves a saturated count or too many terms
    for uint64-exact summation (the caller re-answers those through the
    scalar kernel and its overflow tables).
    """
    np = _np
    nq = len(iv)
    ihubs, idists, icounts, isat = icols.bydist
    off = icols.offsets
    begin = off[iv]
    seg_len = off[iv + 1] - begin
    cursor = np.zeros(nq, dtype=np.int64)
    unreached = np.uint64(UNREACHED)
    sh = np.uint64(shift)
    best = np.full(nq, unreached, dtype=np.uint64)

    # Probe-side lookup: a dense (unique probe vertex, hub) -> flat-row
    # matrix makes each probe one O(1) gather instead of a binary
    # search; batches whose matrix would not fit fall back to
    # searchsorted over the global probe-key column.
    n_p = len(pcols.offsets) - 1
    upv, pvd = np.unique(pv, return_inverse=True)
    matrix = None
    pv64 = None
    if len(upv) * n_p <= _PROBE_MATRIX_CAP:
        ppos, pseg = _segment_gather(
            pcols.offsets[upv], pcols.offsets[upv + 1])
        matrix = np.full((len(upv), n_p), -1, dtype=np.int32)
        matrix[pseg, pcols.hubs[ppos]] = ppos
    else:
        pv64 = pv.astype(np.uint64) << np.uint64(VERTEX_BITS)

    acc_q: list = []
    acc_d: list = []
    acc_c: list = []
    acc_s: list = []

    if px is not None:
        # Couple-hub probe: Lin(y) carrying hub x_in, derived distance 0.
        iv64 = iv.astype(np.uint64) << np.uint64(VERTEX_BITS)
        rows = _probe(icols, iv64 | px)
        hit = np.nonzero(rows >= 0)[0]
        if len(hit):
            r = rows[hit]
            d0 = icols.dists[r]
            best[hit] = d0
            acc_q.append(hit)
            acc_d.append(d0)
            acc_c.append(icols.counts[r])
            acc_s.append(icols.sat[r])

    live = np.nonzero(seg_len > 0)[0]
    chunk = _CHUNK
    while len(live):
        lb = begin[live] + cursor[live]
        take = np.minimum(seg_len[live] - cursor[live], chunk)
        chunk = min(chunk * 2, _CHUNK_MAX)
        rpos, rq_local = _segment_gather(lb, lb + take)
        rq = live[rq_local]
        d_it = idists[rpos]
        hub_it = ihubs[rpos]
        if matrix is not None:
            rows = matrix[pvd[rq], hub_it]
        else:
            rows = _probe(pcols, pv64[rq] | hub_it)
        # One mask: real intersection, still able to reach the query's
        # current best (the scalar early-exit bound), not the couple hub.
        ok = (rows >= 0) & (d_it + sh <= best[rq])
        if px is not None:
            ok &= hub_it != px[rq]
        hit = np.nonzero(ok)[0]
        if len(hit):
            r = rows[hit]
            hq = rq[hit]
            d = d_it[hit] + sh + pcols.dists[r]
            np.minimum.at(best, hq, d)
            acc_q.append(hq)
            acc_d.append(d)
            acc_c.append(icounts[rpos[hit]] * pcols.counts[r])
            acc_s.append(isat[rpos[hit]] | pcols.sat[r])
        cursor[live] += take
        cand = live[cursor[live] < seg_len[live]]
        if len(cand):
            nxt = idists[begin[cand] + cursor[cand]]
            live = cand[nxt + sh <= best[cand]]
        else:
            live = cand

    total = np.zeros(nq, dtype=np.uint64)
    if acc_q:
        qa = np.concatenate(acc_q)
        da = np.concatenate(acc_d)
        ca = np.concatenate(acc_c)
        sa = np.concatenate(acc_s)
        at_best = da == best[qa]
        qa = qa[at_best]
        np.add.at(total, qa, ca[at_best])
        nterms = np.bincount(qa, minlength=nq)
        has_sat = np.zeros(nq, dtype=bool)
        has_sat[qa[sa[at_best]]] = True
    else:
        nterms = np.zeros(nq, dtype=np.int64)
        has_sat = np.zeros(nq, dtype=bool)
    redo = has_sat | (nterms > _SAFE_TERMS)
    return best, total, redo


# ---------------------------------------------------------------------------
# Bulk SCCnt
# ---------------------------------------------------------------------------


def sccnt_many(
    index: CSCIndex,
    vertices: Sequence[int],
    *,
    workers: int | None = None,
) -> list[CycleCount]:
    """Count shortest cycles through each vertex of a batch.

    Bit-identical to ``[index.sccnt(v) for v in vertices]``, evaluated
    through the vectorized backend when NumPy is available.  Raises
    :class:`BatchVertexError` naming every out-of-range id before any
    query runs, and :class:`StaleLabelError` when the store carries
    deferred-repair tombstones (exactly like the scalar path).
    """
    _check_stale(index)
    n = len(index.store_in)
    if _np is None:
        vs = _coerce_vertices(vertices, n)
        if workers is not None and workers > 1 and vs:
            return _pooled_query(index, "sccnt", vs, workers)
        sccnt = index.sccnt
        return [sccnt(v) for v in vs]
    arr = _as_id_array(vertices, n)
    if not len(arr):
        return []
    if workers is not None and workers > 1:
        return _pooled_query(index, "sccnt", arr.tolist(), workers)
    return _sccnt_many_np(index, arr)


def _sccnt_many_np(index: CSCIndex, arr) -> list[CycleCount]:
    np = _np
    uq, inv = np.unique(arr, return_inverse=True)
    best, total, redo = _wave_join(
        store_columns(index.store_in),
        store_columns(index.store_out),
        uq, uq, 0,
    )
    # Materialize per unique vertex: prefill the NO_CYCLE misses, build
    # tuples only for the hits, rerun saturated/overflow queries through
    # the exact scalar kernel.
    res_u: list[CycleCount] = [NO_CYCLE] * len(uq)
    hits = np.nonzero((total != 0) & (best != np.uint64(UNREACHED))
                      & ~redo)[0]
    counts = total[hits].tolist()
    lengths = ((best[hits] + np.uint64(1)) >> np.uint64(1)).tolist()
    new = tuple.__new__
    for k, j in enumerate(hits.tolist()):
        res_u[j] = new(CycleCount, (counts[k], lengths[k]))
    if redo.any():
        sccnt = index.sccnt
        for j in np.nonzero(redo)[0].tolist():
            res_u[j] = sccnt(int(uq[j]))
    return [res_u[j] for j in inv.tolist()]


# ---------------------------------------------------------------------------
# Bulk SPCnt
# ---------------------------------------------------------------------------


def spcnt_many(
    index: CSCIndex,
    pairs: Sequence[tuple[int, int]],
    *,
    workers: int | None = None,
) -> list[PathCount]:
    """Count shortest x→y paths for each pair of a batch.

    Bit-identical to ``[index.spcnt(x, y) for x, y in pairs]``; same
    validation and staleness contract as :func:`sccnt_many`.
    """
    _check_stale(index)
    n = len(index.store_in)
    if _np is None:
        xs, ys = _coerce_pairs(pairs, n)
        if workers is not None and workers > 1 and xs:
            return _pooled_query(index, "spcnt", list(zip(xs, ys)), workers)
        spcnt = index.spcnt
        return [spcnt(x, y) for x, y in zip(xs, ys)]
    np = _np
    try:
        arr = np.asarray(pairs)
        ok = arr.ndim == 2 and arr.shape[1] == 2 and arr.dtype.kind in "iu"
    except Exception:
        ok = False
    if ok:
        arr = arr.astype(np.int64, copy=False)
        bad_rows = np.nonzero((arr < 0) | (arr >= n))
        if len(bad_rows[0]):
            raise BatchVertexError(
                [(int(i), int(arr[i, j]))
                 for i, j in zip(bad_rows[0], bad_rows[1])], n)
        x, y = arr[:, 0], arr[:, 1]
    else:
        xs, ys = _coerce_pairs(pairs, n)
        x = np.asarray(xs, dtype=np.int64)
        y = np.asarray(ys, dtype=np.int64)
    if not len(x):
        return []
    if workers is not None and workers > 1:
        return _pooled_query(
            index, "spcnt", list(zip(x.tolist(), y.tolist())), workers)
    return _spcnt_many_np(index, x, y)


def _spcnt_many_np(index: CSCIndex, x, y) -> list[PathCount]:
    np = _np
    # Dedup on the composite pair key (both ids fit VERTEX_BITS).
    pk = (x << VERTEX_BITS) | y
    upk, inv = np.unique(pk, return_inverse=True)
    ux = upk >> VERTEX_BITS
    uy = upk & ((1 << VERTEX_BITS) - 1)
    px = np.asarray(index.pos, dtype=np.uint64)[ux]
    best, total, redo = _wave_join(
        store_columns(index.store_in),
        store_columns(index.store_out),
        uy, ux, 1, px=px,
    )
    same = ux == uy
    res_u: list[PathCount] = [NO_PATH] * len(ux)
    hits = np.nonzero((total != 0) & (best != np.uint64(UNREACHED))
                      & ~redo & ~same)[0]
    counts = total[hits].tolist()
    dists = (best[hits] >> np.uint64(1)).tolist()
    new = tuple.__new__
    for k, j in enumerate(hits.tolist()):
        res_u[j] = new(PathCount, (counts[k], dists[k]))
    for j in np.nonzero(same)[0].tolist():
        res_u[j] = _PATH_SELF  # the empty path, as in scalar spcnt
    redo &= ~same
    if redo.any():
        spcnt = index.spcnt
        for j in np.nonzero(redo)[0].tolist():
            res_u[j] = spcnt(int(ux[j]), int(uy[j]))
    return [res_u[j] for j in inv.tolist()]


# ---------------------------------------------------------------------------
# Pool fan-out (zero-copy snapshot transport)
# ---------------------------------------------------------------------------


def _pooled_query(index: CSCIndex, kind: str, items: list, workers: int):
    """Fan a validated batch out across the long-lived build pool.

    The frozen label stores cross the worker pipes once, in the RPLS
    per-vertex memcpy format (no per-entry pickling); each worker builds
    a query-only index replica and answers its contiguous chunk with the
    same bulk kernels, so results are bit-identical to in-process
    evaluation and reassemble in submission order.
    """
    from repro.build.parallel import _POOL_LOCK, _chunk, _get_pool

    blob_in = index.store_in.to_bytes()
    blob_out = index.store_out.to_bytes()
    order = list(index.order)
    with _POOL_LOCK:
        pool = _get_pool(workers)
        chunks = _chunk(items, pool.size)
        pool.broadcast(("qinit", order, blob_in, blob_out))
        for i in range(pool.size):
            while pool._recv(i)[0] != "ready":
                pass
        busy = []
        for i, chunk in enumerate(chunks):
            if chunk:
                pool._send(i, ("query", kind, chunk))
                busy.append(i)
        parts = {i: pool._recv(i) for i in busy}
    results: list = []
    for i in busy:
        tag, payload = parts[i]
        assert tag == "result", tag
        results.extend(payload)
    return results
