"""The seed's tuple-list query kernels, frozen for differential testing.

These are byte-for-byte the pre-packed-store implementations of the hot
query paths (``CSCIndex.sccnt`` / ``qdist_in_in`` / ``qdist_out_in`` /
``derived_out_map`` and the HP-SPC label merge), operating on labels as
plain lists of ``(hub_pos, dist, count, canonical)`` tuples.  They serve
two purposes:

* the Hypothesis differential harness
  (``tests/properties/test_packed_differential.py``) proves the packed
  store's merge-join kernels bit-identical to them on random graphs and
  update streams;
* ``benchmarks/run_all.py`` times them against the packed kernels on the
  same label data, so the BENCH_query.json speedup claim is measured
  against the real pre-PR code, not a strawman.

Do not "optimize" this module — its value is staying exactly what the
seed shipped.
"""

from __future__ import annotations

from repro.types import NO_CYCLE, CycleCount

__all__ = [
    "UNREACHED",
    "legacy_merge_labels",
    "legacy_sccnt",
    "legacy_cycle_gb_distance",
    "legacy_derived_out_map",
    "legacy_qdist_in_in",
    "legacy_qdist_out_in",
]

UNREACHED = 1 << 60

Entry = tuple[int, int, int, bool]


def legacy_merge_labels(
    out_labels: list[Entry], in_labels: list[Entry]
) -> tuple[int, int]:
    """Two-pointer sorted merge over tuple lists (seed ``merge_labels``)."""
    best = UNREACHED
    total = 0
    i = j = 0
    len_a, len_b = len(out_labels), len(in_labels)
    while i < len_a and j < len_b:
        entry_a = out_labels[i]
        entry_b = in_labels[j]
        if entry_a[0] < entry_b[0]:
            i += 1
        elif entry_a[0] > entry_b[0]:
            j += 1
        else:
            d = entry_a[1] + entry_b[1]
            if d < best:
                best = d
                total = entry_a[2] * entry_b[2]
            elif d == best:
                total += entry_a[2] * entry_b[2]
            i += 1
            j += 1
    return best, total


def legacy_sccnt(
    label_out: list[list[Entry]], label_in: list[list[Entry]], v: int
) -> CycleCount:
    """Seed ``CSCIndex.sccnt`` over tuple-list label tables."""
    d, c = legacy_merge_labels(label_out[v], label_in[v])
    if d == UNREACHED or c == 0:
        return NO_CYCLE
    return CycleCount(c, (d + 1) // 2)


def legacy_cycle_gb_distance(
    label_out: list[list[Entry]], label_in: list[list[Entry]], v: int
) -> int:
    """Seed ``CSCIndex.cycle_gb_distance``."""
    return legacy_merge_labels(label_out[v], label_in[v])[0]


def legacy_derived_out_map(
    label_out: list[list[Entry]], pos: list[int], x: int
) -> dict[int, tuple[int, int]]:
    """Seed ``CSCIndex.derived_out_map`` (rebuilds a dict per call)."""
    px = pos[x]
    mapping: dict[int, tuple[int, int]] = {px: (0, 1)}
    for q, d, c, _f in label_out[x]:
        if q != px:
            mapping[q] = (d + 1, c)
    return mapping


def legacy_qdist_in_in(
    label_out: list[list[Entry]],
    label_in: list[list[Entry]],
    pos: list[int],
    x: int,
    y: int,
) -> int:
    """Seed ``CSCIndex.qdist_in_in``."""
    if x == y:
        return 0
    out_map = legacy_derived_out_map(label_out, pos, x)
    best = UNREACHED
    for q, d, _c, _f in label_in[y]:
        pair = out_map.get(q)
        if pair is not None and pair[0] + d < best:
            best = pair[0] + d
    return best


def legacy_qdist_out_in(
    label_out: list[list[Entry]],
    label_in: list[list[Entry]],
    x: int,
    y: int,
) -> int:
    """Seed ``CSCIndex.qdist_out_in`` (rebuilds a dict per call)."""
    in_map = {q: d for q, d, _c, _f in label_in[y]}
    best = UNREACHED
    for q, d, _c, _f in label_out[x]:
        other = in_map.get(q)
        if other is not None and d + other < best:
            best = d + other
    return best
