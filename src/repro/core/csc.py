"""CSC — bipartite hub labeling for shortest cycle counting (Section IV).

The index of the paper: build the bipartite conversion ``Gb`` of the input
graph, hub-label it under the shortest-path-counting cover constraint, and
answer ``SCCnt(v)`` as ``SPCnt_Gb(v_out, v_in)`` with cycle length
``(d + 1) / 2``.

Representation
--------------
``Gb`` is never materialized.  Its structure makes couple labels redundant
(``v_in``'s single out-edge / ``v_out``'s single in-edge is the couple edge),
so per original vertex ``v`` we store only the two lists the cycle query
reads — Section IV-E's *index reduction*:

* ``label_in[v]``  = ``Lin(v_in)``  — entries ``(hub_pos, dist, count, canonical)``;
* ``label_out[v]`` = ``Lout(v_out)`` — same format; the entry whose hub is
  ``v`` itself is the *cycle entry* ``(v_in, d, c) ∈ Lout(v_out)``
  (cf. Table III's ``(v7i, 11, 1)``).

Hubs are always ``Vin`` vertices: on any ``x_out -> x_in`` path every
``v_out`` is preceded by its higher-ranked couple ``v_in`` (the start
``x_out``'s couple is the path's endpoint), so the highest-ranked vertex is
in ``Vin`` — this is why couple-vertex skipping loses nothing for cycle
queries.  A hub is identified by its original vertex's rank position
``pos``; the ``Gb`` rank order is ``v1_in, v1_out, v2_in, v2_out, ...``
following the original order, which keeps couples consecutive (Section IV-B).

Distances are stored in ``Gb`` units: ``sd(h_in, w_in) = 2 * sd_G0(h, w)``,
``sd(w_out, h_in) = 2 * sd_G0(w, h) - 1``, so Table III's values (4, 7, 11)
appear verbatim.

Construction (Algorithms 3–4) runs one forward and one backward pruned
counting BFS per hub, processing only one side of each couple: a forward BFS
dequeues ``w_in`` vertices and hops ``w_in -> w_out -> u_in`` at distance
``+2``; a backward BFS dequeues ``w_out`` vertices.  The backward rank test
``h_in ≺ u_out  ⇔  pos(h) <= pos(u)`` admits ``u = h`` — the dequeue of the
hub's own couple is the couple-cycle case, which records the cycle entry and
prunes (rule (4) of Section IV-C).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Sequence

from repro.errors import SerializationError
from repro.graph.digraph import DiGraph
from repro.labeling.hpspc import UNREACHED, merge_labels
from repro.labeling.ordering import degree_order, positions, validate_order
from repro.labeling.packing import (
    labels_from_bytes,
    labels_to_bytes,
    packed_size_bytes,
)
from repro.types import NO_CYCLE, CycleCount

__all__ = ["CSCIndex"]

Entry = tuple[int, int, int, bool]


class CSCIndex:
    """The CSC shortest-cycle-counting index over a dynamic directed graph.

    Build with :meth:`build`; query with :meth:`sccnt`; maintain under edge
    updates through :mod:`repro.core.maintenance` (or the
    :class:`~repro.core.counter.ShortestCycleCounter` facade).
    """

    __slots__ = (
        "graph",
        "order",
        "pos",
        "label_in",
        "label_out",
        "_inv_in",
        "_inv_out",
    )

    def __init__(
        self,
        graph: DiGraph,
        order: list[int],
        pos: list[int],
        label_in: list[list[Entry]],
        label_out: list[list[Entry]],
    ) -> None:
        self.graph = graph
        self.order = order
        self.pos = pos
        self.label_in = label_in
        self.label_out = label_out
        # Inverted indexes (hub_pos -> set of labeled vertices); built lazily
        # by ensure_inverted() since only dynamic maintenance needs them.
        self._inv_in: list[set[int]] | None = None
        self._inv_out: list[set[int]] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, graph: DiGraph, order: Sequence[int] | None = None
    ) -> "CSCIndex":
        """Build the CSC index (Algorithm 3 with couple-vertex skipping).

        ``order`` is an original-graph vertex permutation (highest rank
        first); it defaults to the paper's degree-descending order and is
        lifted to ``Gb`` with couples kept consecutive.
        """
        if order is None:
            order_list = degree_order(graph)
        else:
            order_list = list(order)
            validate_order(order_list, graph.n)
        pos = positions(order_list)
        n = graph.n
        label_in: list[list[Entry]] = [[] for _ in range(n)]
        label_out: list[list[Entry]] = [[] for _ in range(n)]
        dist = [UNREACHED] * n
        cnt = [0] * n
        for p, v in enumerate(order_list):
            _forward_bfs(graph, v, p, pos, label_in, label_out, dist, cnt)
            _backward_bfs(graph, v, p, pos, label_in, label_out, dist, cnt)
        return cls(graph, order_list, pos, label_in, label_out)

    def copy(self, copy_graph: bool = True) -> "CSCIndex":
        """Independent copy of the index (and, by default, its graph) —
        used by experiments that replay the same update batch under both
        maintenance strategies."""
        return CSCIndex(
            self.graph.copy() if copy_graph else self.graph,
            list(self.order),
            list(self.pos),
            [list(entries) for entries in self.label_in],
            [list(entries) for entries in self.label_out],
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sccnt(self, v: int) -> CycleCount:
        """``SCCnt(v)``: count and length of the shortest cycles through
        ``v`` (Section IV-D).

        Evaluates ``SPCnt_Gb(v_out, v_in)`` by a sorted merge of
        ``Lout(v_out)`` and ``Lin(v_in)``; the ``Gb`` distance ``d`` maps to
        cycle length ``(d + 1) / 2``.
        """
        d, c = merge_labels(self.label_out[v], self.label_in[v])
        if d == UNREACHED or c == 0:
            return NO_CYCLE
        return CycleCount(c, (d + 1) // 2)

    def cycle_gb_distance(self, v: int) -> int:
        """Raw ``Gb`` distance of ``SPCnt(v_out, v_in)`` (``UNREACHED`` when
        no cycle exists) — exposed for tests and diagnostics."""
        return merge_labels(self.label_out[v], self.label_in[v])[0]

    # ------------------------------------------------------------------
    # Internal distance/count queries over the implicit Gb
    # (used by dynamic maintenance; all are full-label queries)
    # ------------------------------------------------------------------
    def derived_out_map(self, x: int) -> dict[int, tuple[int, int]]:
        """Full ``Lout(x_in)`` as ``{hub_pos: (dist, count)}``.

        Derived from the stored ``Lout(x_out)`` by the couple shift
        ``sd(x_in, h) = sd(x_out, h) + 1``, with the hub ``x_in`` itself at
        distance 0 replacing the shifted cycle entry.
        """
        px = self.pos[x]
        mapping: dict[int, tuple[int, int]] = {px: (0, 1)}
        for q, d, c, _f in self.label_out[x]:
            if q != px:
                mapping[q] = (d + 1, c)
        return mapping

    def qdist_in_in(self, x: int, y: int) -> int:
        """``sd_Gb(x_in, y_in)`` via the full label cover."""
        if x == y:
            return 0
        out_map = self.derived_out_map(x)
        best = UNREACHED
        for q, d, _c, _f in self.label_in[y]:
            pair = out_map.get(q)
            if pair is not None and pair[0] + d < best:
                best = pair[0] + d
        return best

    def qdist_out_in(self, x: int, y: int) -> int:
        """``sd_Gb(x_out, y_in)`` via the full label cover.

        For ``x == y`` this is the cycle distance.  Correct for all pairs
        actually covered by the reduced index (see module docstring); used by
        CLEAN-LABEL and maintenance pruning, always on (source=out,
        target=in) pairs, which the Vin-hub cover handles.
        """
        in_map = {q: d for q, d, _c, _f in self.label_in[y]}
        best = UNREACHED
        for q, d, _c, _f in self.label_out[x]:
            other = in_map.get(q)
            if other is not None and d + other < best:
                best = d + other
        return best

    # ------------------------------------------------------------------
    # Inverted indexes for maintenance
    # ------------------------------------------------------------------
    def ensure_inverted(self) -> tuple[list[set[int]], list[set[int]]]:
        """Build (once) and return ``(inv_in, inv_out)``:
        ``inv_in[hub_pos]`` is the set of vertices ``w`` with an entry of
        that hub in ``label_in[w]`` (Algorithm 8's inverted index)."""
        if self._inv_in is None or self._inv_out is None:
            n = self.graph.n
            inv_in: list[set[int]] = [set() for _ in range(n)]
            inv_out: list[set[int]] = [set() for _ in range(n)]
            for w in range(n):
                for q, _d, _c, _f in self.label_in[w]:
                    inv_in[q].add(w)
                for q, _d, _c, _f in self.label_out[w]:
                    inv_out[q].add(w)
            self._inv_in = inv_in
            self._inv_out = inv_out
        return self._inv_in, self._inv_out

    def entry_index(self, entries: list[Entry], hub_pos: int) -> int:
        """Position of ``hub_pos`` in a sorted entry list, or ``-1``."""
        i = bisect_left(entries, hub_pos, key=lambda e: e[0])
        if i < len(entries) and entries[i][0] == hub_pos:
            return i
        return -1

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, deep: bool = False) -> list[str]:
        """Check index invariants; returns a list of violation messages
        (empty = healthy).

        Structural checks (always): order is a permutation; label lists are
        sorted by hub rank without duplicates; hub ranks never fall below
        the labeled vertex's rank (except a vertex's own cycle entry);
        every in-label list carries its self entry; counts are positive;
        cached inverted indexes agree with the labels.

        ``deep`` additionally replays every query against the BFS oracle —
        O(n * (n + m)), meant for tests and post-mortems, not production.
        """
        problems: list[str] = []
        n = self.graph.n
        if sorted(self.order) != list(range(n)):
            problems.append("order is not a permutation of the vertices")
            return problems
        for v in range(n):
            pv = self.pos[v]
            for side, table in (("in", self.label_in), ("out", self.label_out)):
                hubs = [e[0] for e in table[v]]
                if hubs != sorted(hubs):
                    problems.append(f"L{side}({v}) not sorted by hub rank")
                if len(hubs) != len(set(hubs)):
                    problems.append(f"L{side}({v}) has duplicate hubs")
                for q, d, c, _f in table[v]:
                    if q > pv:
                        problems.append(
                            f"L{side}({v}) hub rank {q} below vertex rank {pv}"
                        )
                    if c <= 0 or d < 0:
                        problems.append(
                            f"L{side}({v}) entry ({q},{d},{c}) malformed"
                        )
            if self.entry_index(self.label_in[v], pv) < 0:
                problems.append(f"Lin({v}) missing its self entry")
        if self._inv_in is not None and self._inv_out is not None:
            for inv, table, side in (
                (self._inv_in, self.label_in, "in"),
                (self._inv_out, self.label_out, "out"),
            ):
                for v in range(n):
                    for q, *_ in table[v]:
                        if v not in inv[q]:
                            problems.append(
                                f"inv_{side}[{q}] missing vertex {v}"
                            )
                for q in range(n):
                    for v in inv[q]:
                        if self.entry_index(table[v], q) < 0:
                            problems.append(
                                f"inv_{side}[{q}] has stale vertex {v}"
                            )
        if deep and not problems:
            from repro.baselines.bfs_cycle import bfs_cycle_count

            for v in range(n):
                expected = bfs_cycle_count(self.graph, v)
                got = self.sccnt(v)
                if got != expected:
                    problems.append(
                        f"SCCnt({v}) = {got}, oracle says {expected}"
                    )
        return problems

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    def total_entries(self) -> int:
        """Stored label entries (the reduced representation's footprint)."""
        return sum(len(lbl) for lbl in self.label_in) + sum(
            len(lbl) for lbl in self.label_out
        )

    def size_bytes(self) -> int:
        """Index size under the paper's 64-bit entry encoding."""
        return packed_size_bytes(self.total_entries())

    def average_label_size(self) -> float:
        """Mean stored entries per vertex per direction."""
        if self.graph.n == 0:
            return 0.0
        return self.total_entries() / (2 * self.graph.n)

    def named_labels_of(
        self, v: int
    ) -> tuple[set[tuple[int, int, int]], set[tuple[int, int, int]]]:
        """``(Lin(v_in), Lout(v_out))`` with hub *vertex ids* — the
        Table III view (hub ids name the ``v_in`` vertex of that original
        vertex)."""
        lin = {(self.order[q], d, c) for (q, d, c, _) in self.label_in[v]}
        lout = {(self.order[q], d, c) for (q, d, c, _) in self.label_out[v]}
        return lin, lout

    def to_bytes(self) -> bytes:
        """Serialize the labels (graph not included)."""
        return b"".join(
            [
                labels_to_bytes(self.order, self.label_in),
                labels_to_bytes(self.order, self.label_out),
            ]
        )

    @classmethod
    def from_bytes(cls, blob: bytes, graph: DiGraph) -> "CSCIndex":
        """Rebuild an index from :meth:`to_bytes` output plus its graph."""
        from repro.labeling.hpspc import labels_from_bytes_prefix

        (order, label_in), consumed = labels_from_bytes_prefix(blob)
        order2, label_out = labels_from_bytes(blob[consumed:])
        if order2 != order:
            raise SerializationError("in/out label blobs disagree on order")
        if len(order) != graph.n:
            raise SerializationError(
                f"index was built for n={len(order)}, graph has n={graph.n}"
            )
        return cls(graph, order, positions(order), label_in, label_out)


# ---------------------------------------------------------------------------
# Construction BFS kernels
# ---------------------------------------------------------------------------


def _forward_bfs(
    graph: DiGraph,
    h: int,
    ph: int,
    pos: list[int],
    label_in: list[list[Entry]],
    label_out: list[list[Entry]],
    dist: list[int],
    cnt: list[int],
) -> None:
    """In-label generation for hub ``h_in`` (Algorithm 3 lines 9–26).

    The queue holds original vertices standing for their ``w_in`` side; each
    expansion step crosses the couple edge plus one original edge, so levels
    advance by 2 in ``Gb`` units.
    """
    # Canonical sd(h_in, q_in) for strictly higher hubs, via the couple shift
    # of the stored Lout(h_out).
    hub_dist: dict[int, int] = {}
    for q, d, _c, canonical in label_out[h]:
        if q >= ph:
            break
        if canonical:
            hub_dist[q] = d + 1
    out_neighbors = graph.out_neighbors

    dist[h] = 0
    cnt[h] = 1
    queue: deque[int] = deque((h,))
    visited = [h]
    while queue:
        w = queue.popleft()
        d_w = dist[w]
        d_via = UNREACHED
        for q, dq, _cq, canonical in label_in[w]:
            if q >= ph:
                break
            if canonical:
                hd = hub_dist.get(q)
                if hd is not None and hd + dq < d_via:
                    d_via = hd + dq
        if d_via < d_w:
            continue
        label_in[w].append((ph, d_w, cnt[w], d_via > d_w))
        d_next = d_w + 2
        c_w = cnt[w]
        for u in out_neighbors(w):
            if dist[u] == UNREACHED:
                if pos[u] > ph:
                    dist[u] = d_next
                    cnt[u] = c_w
                    queue.append(u)
                    visited.append(u)
            elif dist[u] == d_next:
                cnt[u] += c_w
    for w in visited:
        dist[w] = UNREACHED
        cnt[w] = 0


def _backward_bfs(
    graph: DiGraph,
    h: int,
    ph: int,
    pos: list[int],
    label_in: list[list[Entry]],
    label_out: list[list[Entry]],
    dist: list[int],
    cnt: list[int],
) -> None:
    """Out-label generation for hub ``h_in`` (reverse direction).

    The queue holds original vertices standing for their ``w_out`` side.
    The rank test ``pos[u] >= ph`` admits ``u == h``: dequeuing the hub's own
    couple ``h_out`` records the cycle entry and prunes (Section IV-C
    rule (4)).
    """
    hub_dist: dict[int, int] = {}
    for q, d, _c, canonical in label_in[h]:
        if q >= ph:
            break
        if canonical:
            hub_dist[q] = d
    in_neighbors = graph.in_neighbors

    queue: deque[int] = deque()
    visited: list[int] = []
    for u in in_neighbors(h):
        if pos[u] >= ph:
            dist[u] = 1
            cnt[u] = 1
            queue.append(u)
            visited.append(u)
    while queue:
        w = queue.popleft()
        d_w = dist[w]
        d_via = UNREACHED
        for q, dq, _cq, canonical in label_out[w]:
            if q >= ph:
                break
            if canonical:
                hd = hub_dist.get(q)
                if hd is not None and dq + hd < d_via:
                    d_via = dq + hd
        if d_via < d_w:
            continue
        label_out[w].append((ph, d_w, cnt[w], d_via > d_w))
        if w == h:
            continue  # couple-cycle: cycle entry recorded, prune
        d_next = d_w + 2
        c_w = cnt[w]
        for u in in_neighbors(w):
            if dist[u] == UNREACHED:
                if pos[u] >= ph:
                    dist[u] = d_next
                    cnt[u] = c_w
                    queue.append(u)
                    visited.append(u)
            elif dist[u] == d_next:
                cnt[u] += c_w
    for w in visited:
        dist[w] = UNREACHED
        cnt[w] = 0
