"""CSC — bipartite hub labeling for shortest cycle counting (Section IV).

The index of the paper: build the bipartite conversion ``Gb`` of the input
graph, hub-label it under the shortest-path-counting cover constraint, and
answer ``SCCnt(v)`` as ``SPCnt_Gb(v_out, v_in)`` with cycle length
``(d + 1) / 2``.

Representation
--------------
``Gb`` is never materialized.  Its structure makes couple labels redundant
(``v_in``'s single out-edge / ``v_out``'s single in-edge is the couple edge),
so per original vertex ``v`` we store only the two lists the cycle query
reads — Section IV-E's *index reduction*:

* ``label_in[v]``  = ``Lin(v_in)``  — entries ``(hub_pos, dist, count, canonical)``;
* ``label_out[v]`` = ``Lout(v_out)`` — same format; the entry whose hub is
  ``v`` itself is the *cycle entry* ``(v_in, d, c) ∈ Lout(v_out)``
  (cf. Table III's ``(v7i, 11, 1)``).

Hubs are always ``Vin`` vertices: on any ``x_out -> x_in`` path every
``v_out`` is preceded by its higher-ranked couple ``v_in`` (the start
``x_out``'s couple is the path's endpoint), so the highest-ranked vertex is
in ``Vin`` — this is why couple-vertex skipping loses nothing for cycle
queries.  A hub is identified by its original vertex's rank position
``pos``; the ``Gb`` rank order is ``v1_in, v1_out, v2_in, v2_out, ...``
following the original order, which keeps couples consecutive (Section IV-B).

Distances are stored in ``Gb`` units: ``sd(h_in, w_in) = 2 * sd_G0(h, w)``,
``sd(w_out, h_in) = 2 * sd_G0(w, h) - 1``, so Table III's values (4, 7, 11)
appear verbatim.

Construction (Algorithms 3–4) runs one forward and one backward pruned
counting BFS per hub, processing only one side of each couple: a forward BFS
dequeues ``w_in`` vertices and hops ``w_in -> w_out -> u_in`` at distance
``+2``; a backward BFS dequeues ``w_out`` vertices.  The backward rank test
``h_in ≺ u_out  ⇔  pos(h) <= pos(u)`` admits ``u = h`` — the dequeue of the
hub's own couple is the couple-cycle case, which records the cycle entry and
prunes (rule (4) of Section IV-C).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from collections.abc import Sequence

from repro.errors import SerializationError, StaleLabelError
from repro.graph.digraph import DiGraph
from repro.labeling.hpspc import UNREACHED
from repro.labeling.labelstore import (
    HUB_SHIFT,
    LabelStore,
    LabelTable,
    coerce_store,
    join_bydist_min_dist,
)
from repro.labeling.ordering import degree_order, positions, validate_order
from repro.types import NO_CYCLE, NO_PATH, CycleCount, PathCount

__all__ = ["CSCIndex"]

Entry = tuple[int, int, int, bool]

_INDEX_MAGIC = b"RPCI"
_INDEX_VERSION = 1


class CSCIndex:
    """The CSC shortest-cycle-counting index over a dynamic directed graph.

    Build with :meth:`build`; query with :meth:`sccnt`; maintain under edge
    updates through :mod:`repro.core.maintenance` (or the
    :class:`~repro.core.counter.ShortestCycleCounter` facade).
    """

    __slots__ = (
        "graph",
        "order",
        "pos",
        "store_in",
        "store_out",
        "_qmaps_in",
        "_qmaps_out",
        "_qdist_in",
        "_qdist_out",
        "_qdd_in",
        "_qdd_out",
        "_inv_in",
        "_inv_out",
    )

    def __init__(
        self,
        graph: DiGraph,
        order: list[int],
        pos: list[int],
        label_in,
        label_out,
    ) -> None:
        self.graph = graph
        self.order = order
        self.pos = pos
        # Labels live in packed flat-array stores; the seed's
        # list-of-tuple-lists is accepted and packed on the way in.
        self.store_in: LabelStore = coerce_store(label_in)
        self.store_out: LabelStore = coerce_store(label_out)
        # Direct aliases of the stores' per-vertex hub maps: the query
        # kernels are called millions of times, so they skip the
        # store-attribute hops.  The alias stays valid because stores
        # mutate the map list in place; anything that swaps a store out
        # must call _bind_query_maps() again.
        self._qmaps_in = self.store_in.ensure_maps()
        self._qmaps_out = self.store_out.ensure_maps()
        self._qdist_in = self.store_in.ensure_bydist()
        self._qdist_out = self.store_out.ensure_bydist()
        self._qdd_in = self.store_in.ensure_dists()
        self._qdd_out = self.store_out.ensure_dists()
        # Inverted indexes (hub_pos -> set of labeled vertices); built lazily
        # by ensure_inverted() since only dynamic maintenance needs them.
        self._inv_in: list[set[int]] | None = None
        self._inv_out: list[set[int]] | None = None

    def _bind_query_maps(self) -> None:
        self._qmaps_in = self.store_in.ensure_maps()
        self._qmaps_out = self.store_out.ensure_maps()
        self._qdist_in = self.store_in.ensure_bydist()
        self._qdist_out = self.store_out.ensure_bydist()
        self._qdd_in = self.store_in.ensure_dists()
        self._qdd_out = self.store_out.ensure_dists()

    @property
    def label_in(self) -> LabelTable:
        """``Lin`` as a list-compatible view over the packed store."""
        return LabelTable(self.store_in)

    @label_in.setter
    def label_in(self, labels) -> None:
        self.store_in = coerce_store(labels)
        self._bind_query_maps()

    @property
    def label_out(self) -> LabelTable:
        """``Lout`` as a list-compatible view over the packed store."""
        return LabelTable(self.store_out)

    @label_out.setter
    def label_out(self, labels) -> None:
        self.store_out = coerce_store(labels)
        self._bind_query_maps()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: DiGraph,
        order: Sequence[int] | None = None,
        workers: int | None = None,
    ) -> CSCIndex:
        """Build the CSC index (Algorithm 3 with couple-vertex skipping).

        ``order`` is an original-graph vertex permutation (highest rank
        first); it defaults to the paper's degree-descending order and is
        lifted to ``Gb`` with couples kept consecutive.

        ``workers`` selects multi-process construction
        (:mod:`repro.build`): ``None`` consults ``$REPRO_BUILD_WORKERS``
        and defaults to 1 (serial).  The parallel result is bit-identical
        (``to_bytes()``) to the serial build for any worker count.
        """
        if order is None:
            order_list = degree_order(graph)
        else:
            order_list = list(order)
            validate_order(order_list, graph.n)
        pos = positions(order_list)
        from repro.build.parallel import build_label_tables, resolve_workers

        n_workers = resolve_workers(workers)
        if n_workers > 1:
            label_in, label_out, _ = build_label_tables(
                graph, order_list, pos, "csc", n_workers
            )
            return cls(graph, order_list, pos, label_in, label_out)
        n = graph.n
        label_in: list[list[Entry]] = [[] for _ in range(n)]
        label_out: list[list[Entry]] = [[] for _ in range(n)]
        dist = [UNREACHED] * n
        cnt = [0] * n
        for p, v in enumerate(order_list):
            _forward_bfs(graph, v, p, pos, label_in, label_out, dist, cnt)
            _backward_bfs(graph, v, p, pos, label_in, label_out, dist, cnt)
        return cls(graph, order_list, pos, label_in, label_out)

    def copy(self, copy_graph: bool = True) -> CSCIndex:
        """Independent copy of the index (and, by default, its graph) —
        used by experiments that replay the same update batch under both
        maintenance strategies."""
        return CSCIndex(
            self.graph.copy() if copy_graph else self.graph,
            list(self.order),
            list(self.pos),
            self.store_in.copy(),
            self.store_out.copy(),
        )

    def snapshot(self) -> CSCIndex:
        """A frozen, query-only view of the current labels.

        Built from :meth:`LabelStore.snapshot` on both sides — O(n)
        pointer copies, with label data shared copy-on-write — so
        publishing one per update batch is cheap.  The snapshot *shares
        the live graph object*: label queries (:meth:`sccnt`,
        :meth:`spcnt`, :meth:`cycle_gb_distance`) never read adjacency
        and stay consistent with the captured labels, but graph-reading
        helpers (:meth:`validate`, maintenance) must not be used on a
        snapshot whose origin has since advanced.  Use
        :class:`repro.service.Snapshot` for the bounds-checked serving
        facade.

        Must be called from the thread that mutates the index (the
        single writer); the returned index may then be read freely from
        any number of threads.
        """
        return CSCIndex(
            self.graph,
            list(self.order),
            list(self.pos),
            self.store_in.snapshot(),
            self.store_out.snapshot(),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sccnt(self, v: int) -> CycleCount:
        """``SCCnt(v)``: count and length of the shortest cycles through
        ``v`` (Section IV-D).

        Evaluates ``SPCnt_Gb(v_out, v_in)`` by a merge-join of
        ``Lout(v_out)`` and ``Lin(v_in)`` over the packed store's hub maps
        (iterate the smaller side, probe the larger at C dict speed); the
        ``Gb`` distance ``d`` maps to cycle length ``(d + 1) / 2``.
        """
        if self.store_in._stale or self.store_out._stale:
            raise StaleLabelError(
                "labels have deferred-repair tombstones; query a clean "
                "snapshot until the background repair completes"
            )
        # Iterate the smaller side's distance-sorted view, probe the
        # larger side's {hub: dist} dict (counts fetched only on
        # improve/tie); stop once the sorted distance passes the best sum
        # found (probe-side distances are >= 0).
        if len(self._qmaps_out[v]) <= len(self._qmaps_in[v]):
            items = self._qdist_out[v]
            probe = self._qdd_in[v]
            counts = self._qmaps_in[v]
        else:
            items = self._qdist_in[v]
            probe = self._qdd_out[v]
            counts = self._qmaps_out[v]
        best = UNREACHED
        total = 0
        get = probe.get
        for d_a, h, c_a in items:
            if d_a > best:
                break
            od = get(h)
            if od is not None:
                d = d_a + od
                if d < best:
                    best = d
                    total = c_a * counts[h][1]
                elif d == best:
                    total += c_a * counts[h][1]
        if total == 0 or best == UNREACHED:
            return NO_CYCLE
        # tuple.__new__ skips NamedTuple's python-level __new__ (~280ns
        # per call on the benchmark machine); the result is a normal
        # CycleCount in every observable way.
        return tuple.__new__(CycleCount, (total, (best + 1) // 2))

    def spcnt(self, x: int, y: int) -> PathCount:
        """``SPCnt(x, y)``: count and length of the shortest ``x -> y``
        paths in the original graph, answered from the cycle labels.

        Every ``x_in -> y_in`` path in ``Gb`` starts with the couple edge
        (``x_in``'s only out-edge), so ``SPCnt_Gb(x_in, y_in)`` equals
        ``SPCnt_Gb(x_out, y_in)`` and its distance is ``2 * sd_G0(x, y)``;
        and on an ``x_in -> y_in`` path the highest-ranked vertex is
        always a ``Vin`` vertex, so the couple-skipped ``Vin``-hub cover
        answers the pair exactly.  The join below probes ``Lin(y_in)``
        against the couple-shifted ``Lout(x_out)`` — the derived
        ``Lout(x_in)`` of :meth:`derived_out_map`, without materializing
        it.  ``spcnt(x, x)`` is the empty path ``(count=1, dist=0)``;
        cycle queries stay :meth:`sccnt`.
        """
        if self.store_in._stale or self.store_out._stale:
            raise StaleLabelError(
                "labels have deferred-repair tombstones; query a clean "
                "snapshot until the background repair completes"
            )
        if x == y:
            return PathCount(1, 0)
        my = self._qmaps_in[y]
        mx = self._qmaps_out[x]
        px = self.pos[x]
        best = UNREACHED
        total = 0
        pair = my.get(px)
        if pair is not None:
            # Hub x_in itself, at derived distance 0.
            best = pair[0]
            total = pair[1]
        get = mx.get
        for q, dc in my.items():
            if q == px:
                continue
            other = get(q)
            if other is not None:
                d = other[0] + 1 + dc[0]
                if d < best:
                    best = d
                    total = other[1] * dc[1]
                elif d == best:
                    total += other[1] * dc[1]
        if total == 0 or best == UNREACHED:
            return NO_PATH
        return PathCount(total, best // 2)

    def sccnt_many(
        self,
        vertices: Sequence[int],
        *,
        workers: int | None = None,
    ) -> list[CycleCount]:
        """Batched :meth:`sccnt` — bit-identical to the scalar loop,
        evaluated through the vectorized NumPy backend when available
        (scalar fallback otherwise).  Validates the whole batch up front
        (:class:`~repro.errors.BatchVertexError` names every offending
        index; no partial results) and refuses tombstoned stores with
        :class:`~repro.errors.StaleLabelError` like the scalar path.
        ``workers > 1`` fans the batch out across the build pool, the
        frozen stores crossing the pipes as RPLS per-vertex bytes.
        """
        from repro.core.bulk import sccnt_many
        return sccnt_many(self, vertices, workers=workers)

    def spcnt_many(
        self,
        pairs: Sequence[tuple[int, int]],
        *,
        workers: int | None = None,
    ) -> list[PathCount]:
        """Batched :meth:`spcnt` over ``(x, y)`` pairs — same contract
        as :meth:`sccnt_many`."""
        from repro.core.bulk import spcnt_many
        return spcnt_many(self, pairs, workers=workers)

    def cycle_gb_distance(self, v: int) -> int:
        """Raw ``Gb`` distance of ``SPCnt(v_out, v_in)`` (``UNREACHED`` when
        no cycle exists) — exposed for tests and diagnostics."""
        if len(self._qmaps_out[v]) <= len(self._qmaps_in[v]):
            return join_bydist_min_dist(self._qdist_out[v], self._qdd_in[v])
        return join_bydist_min_dist(self._qdist_in[v], self._qdd_out[v])

    # ------------------------------------------------------------------
    # Internal distance/count queries over the implicit Gb
    # (used by dynamic maintenance; all are full-label queries)
    # ------------------------------------------------------------------
    def derived_out_map(self, x: int) -> dict[int, tuple[int, int]]:
        """Full ``Lout(x_in)`` as ``{hub_pos: (dist, count)}``.

        Derived from the stored ``Lout(x_out)`` by the couple shift
        ``sd(x_in, h) = sd(x_out, h) + 1``, with the hub ``x_in`` itself at
        distance 0 replacing the shifted cycle entry.
        """
        return self.derived_out_into(x, {})

    def derived_out_into(
        self, x: int, buf: dict[int, tuple[int, int]]
    ) -> dict[int, tuple[int, int]]:
        """Reusable-buffer variant of :meth:`derived_out_map` — clears and
        refills ``buf`` so maintenance loops that derive one map per hub
        never reallocate."""
        buf.clear()
        px = self.pos[x]
        buf[px] = (0, 1)
        for q, dc in self._qmaps_out[x].items():
            if q != px:
                buf[q] = (dc[0] + 1, dc[1])
        return buf

    def qdist_in_in(self, x: int, y: int) -> int:
        """``sd_Gb(x_in, y_in)`` via the full label cover.

        Merge-join over the maintained hub maps: probes ``Lin(y_in)``
        against the couple-shifted ``Lout(x_out)`` without materializing
        the derived map.
        """
        if x == y:
            return 0
        mx = self._qmaps_out[x]
        my = self._qmaps_in[y]
        px = self.pos[x]
        best = UNREACHED
        pair = my.get(px)
        if pair is not None:
            best = pair[0]  # hub x_in itself, at derived distance 0
        get = mx.get
        for q, dc in my.items():
            other = get(q)
            if other is not None and q != px:
                d = other[0] + 1 + dc[0]
                if d < best:
                    best = d
        return best

    def qdist_out_in(self, x: int, y: int) -> int:
        """``sd_Gb(x_out, y_in)`` via the full label cover.

        For ``x == y`` this is the cycle distance.  Correct for all pairs
        actually covered by the reduced index (see module docstring); used by
        CLEAN-LABEL and maintenance pruning, always on (source=out,
        target=in) pairs, which the Vin-hub cover handles.  A merge-join
        over the maintained hub maps — the seed rebuilt a dict of
        ``Lin(y)`` on every call.
        """
        if len(self._qmaps_out[x]) <= len(self._qmaps_in[y]):
            return join_bydist_min_dist(self._qdist_out[x], self._qdd_in[y])
        return join_bydist_min_dist(self._qdist_in[y], self._qdd_out[x])

    # ------------------------------------------------------------------
    # Inverted indexes for maintenance
    # ------------------------------------------------------------------
    def ensure_inverted(self) -> tuple[list[set[int]], list[set[int]]]:
        """Build (once) and return ``(inv_in, inv_out)``:
        ``inv_in[hub_pos]`` is the set of vertices ``w`` with an entry of
        that hub in ``label_in[w]`` (Algorithm 8's inverted index)."""
        if self._inv_in is None or self._inv_out is None:
            n = self.graph.n
            inv_in: list[set[int]] = [set() for _ in range(n)]
            inv_out: list[set[int]] = [set() for _ in range(n)]
            in_packed = self.store_in.packed
            out_packed = self.store_out.packed
            for w in range(n):
                for e in in_packed[w]:
                    inv_in[e >> HUB_SHIFT].add(w)
                for e in out_packed[w]:
                    inv_out[e >> HUB_SHIFT].add(w)
            self._inv_in = inv_in
            self._inv_out = inv_out
        return self._inv_in, self._inv_out

    def entry_index(self, entries, hub_pos: int) -> int:
        """Position of ``hub_pos`` in a sorted entry sequence, or ``-1``.

        For a packed :class:`~repro.labeling.labelstore.LabelView` this is
        a direct bisect over the packed words (hub bits are most
        significant) — no per-call ``key=lambda``.  Plain tuple lists fall
        back to bisecting against the 1-tuple ``(hub_pos,)``, which
        compares lexicographically below every real entry of that hub.
        """
        finder = getattr(entries, "hub_index", None)
        if finder is not None:
            return finder(hub_pos)
        i = bisect_left(entries, (hub_pos,))
        if i < len(entries) and entries[i][0] == hub_pos:
            return i
        return -1

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, deep: bool = False) -> list[str]:
        """Check index invariants; returns a list of violation messages
        (empty = healthy).

        Structural checks (always): order is a permutation; label lists are
        sorted by hub rank without duplicates; hub ranks never fall below
        the labeled vertex's rank (except a vertex's own cycle entry);
        every in-label list carries its self entry; counts are positive;
        cached inverted indexes agree with the labels.

        ``deep`` additionally replays every query against the BFS oracle —
        O(n * (n + m)), meant for tests and post-mortems, not production.
        """
        problems: list[str] = []
        n = self.graph.n
        if sorted(self.order) != list(range(n)):
            problems.append("order is not a permutation of the vertices")
            return problems
        for v in range(n):
            pv = self.pos[v]
            for side, table in (("in", self.label_in), ("out", self.label_out)):
                hubs = [e[0] for e in table[v]]
                if hubs != sorted(hubs):
                    problems.append(f"L{side}({v}) not sorted by hub rank")
                if len(hubs) != len(set(hubs)):
                    problems.append(f"L{side}({v}) has duplicate hubs")
                for q, d, c, _f in table[v]:
                    if q > pv:
                        problems.append(
                            f"L{side}({v}) hub rank {q} below vertex rank {pv}"
                        )
                    if c <= 0 or d < 0:
                        problems.append(
                            f"L{side}({v}) entry ({q},{d},{c}) malformed"
                        )
            if self.entry_index(self.label_in[v], pv) < 0:
                problems.append(f"Lin({v}) missing its self entry")
        if self._inv_in is not None and self._inv_out is not None:
            for inv, table, side in (
                (self._inv_in, self.label_in, "in"),
                (self._inv_out, self.label_out, "out"),
            ):
                for v in range(n):
                    for q, *_ in table[v]:
                        if v not in inv[q]:
                            problems.append(
                                f"inv_{side}[{q}] missing vertex {v}"
                            )
                for q in range(n):
                    for v in inv[q]:
                        if self.entry_index(table[v], q) < 0:
                            problems.append(
                                f"inv_{side}[{q}] has stale vertex {v}"
                            )
        if deep and not problems:
            from repro.baselines.bfs_cycle import bfs_cycle_count

            for v in range(n):
                expected = bfs_cycle_count(self.graph, v)
                got = self.sccnt(v)
                if got != expected:
                    problems.append(
                        f"SCCnt({v}) = {got}, oracle says {expected}"
                    )
        return problems

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    def total_entries(self) -> int:
        """Stored label entries (the reduced representation's footprint)."""
        return (
            self.store_in.total_entries() + self.store_out.total_entries()
        )

    def size_bytes(self) -> int:
        """Index size under the paper's 64-bit entry encoding — now the
        bytes actually held by the packed arrays, not an estimate."""
        return self.store_in.nbytes() + self.store_out.nbytes()

    def average_label_size(self) -> float:
        """Mean stored entries per vertex per direction."""
        if self.graph.n == 0:
            return 0.0
        return self.total_entries() / (2 * self.graph.n)

    def named_labels_of(
        self, v: int
    ) -> tuple[set[tuple[int, int, int]], set[tuple[int, int, int]]]:
        """``(Lin(v_in), Lout(v_out))`` with hub *vertex ids* — the
        Table III view (hub ids name the ``v_in`` vertex of that original
        vertex)."""
        lin = {
            (self.order[q], d, c) for (q, d, c, _) in self.store_in.entries(v)
        }
        lout = {
            (self.order[q], d, c)
            for (q, d, c, _) in self.store_out.entries(v)
        }
        return lin, lout

    def adopt_labels(self, other: CSCIndex) -> None:
        """Take over another index's label stores (the batch engine's
        rebuild fallback) and drop caches tied to the old labels."""
        self.store_in = other.store_in
        self.store_out = other.store_out
        self._bind_query_maps()
        self._inv_in = None
        self._inv_out = None

    def to_bytes(self) -> bytes:
        """Serialize the labels (graph not included).

        The packed stores are dumped with one ``array.tobytes`` memcpy per
        vertex (container format ``RPCI``) — the seed looped a
        ``struct.pack`` per entry.
        """
        order_blob = b"".join(v.to_bytes(4, "little") for v in self.order)
        return b"".join(
            [
                _INDEX_MAGIC,
                bytes([_INDEX_VERSION]),
                len(self.order).to_bytes(4, "little"),
                order_blob,
                self.store_in.to_bytes(),
                self.store_out.to_bytes(),
            ]
        )

    @classmethod
    def from_bytes(cls, blob: bytes, graph: DiGraph) -> CSCIndex:
        """Rebuild an index from :meth:`to_bytes` output plus its graph."""
        if len(blob) < 9 or blob[:4] != _INDEX_MAGIC:
            raise SerializationError("not a packed CSC index blob")
        if blob[4] != _INDEX_VERSION:
            raise SerializationError(
                f"unsupported CSC index version {blob[4]}"
            )
        n = int.from_bytes(blob[5:9], "little")
        if len(blob) < 9 + 4 * n:
            raise SerializationError("truncated CSC index blob")
        order = [
            int.from_bytes(blob[9 + 4 * i: 13 + 4 * i], "little")
            for i in range(n)
        ]
        offset = 9 + 4 * n
        store_in, consumed = LabelStore.from_bytes_prefix(blob[offset:])
        offset += consumed
        store_out = LabelStore.from_bytes(blob[offset:])
        if len(store_in) != n or len(store_out) != n:
            raise SerializationError("in/out label blobs disagree on order")
        if n != graph.n:
            raise SerializationError(
                f"index was built for n={n}, graph has n={graph.n}"
            )
        return cls(graph, order, positions(order), store_in, store_out)


# ---------------------------------------------------------------------------
# Construction BFS kernels
# ---------------------------------------------------------------------------


def _forward_bfs(
    graph: DiGraph,
    h: int,
    ph: int,
    pos: list[int],
    label_in: list[list[Entry]],
    label_out: list[list[Entry]],
    dist: list[int],
    cnt: list[int],
) -> None:
    """In-label generation for hub ``h_in`` (Algorithm 3 lines 9–26).

    The queue holds original vertices standing for their ``w_in`` side; each
    expansion step crosses the couple edge plus one original edge, so levels
    advance by 2 in ``Gb`` units.
    """
    # Canonical sd(h_in, q_in) for strictly higher hubs, via the couple shift
    # of the stored Lout(h_out).
    hub_dist: dict[int, int] = {}
    for q, d, _c, canonical in label_out[h]:
        if q >= ph:
            break
        if canonical:
            hub_dist[q] = d + 1
    out_neighbors = graph.out_neighbors

    dist[h] = 0
    cnt[h] = 1
    queue: deque[int] = deque((h,))
    visited = [h]
    while queue:
        w = queue.popleft()
        d_w = dist[w]
        d_via = UNREACHED
        for q, dq, _cq, canonical in label_in[w]:
            if q >= ph:
                break
            if canonical:
                hd = hub_dist.get(q)
                if hd is not None and hd + dq < d_via:
                    d_via = hd + dq
        if d_via < d_w:
            continue
        label_in[w].append((ph, d_w, cnt[w], d_via > d_w))
        d_next = d_w + 2
        c_w = cnt[w]
        for u in out_neighbors(w):
            if dist[u] == UNREACHED:
                if pos[u] > ph:
                    dist[u] = d_next
                    cnt[u] = c_w
                    queue.append(u)
                    visited.append(u)
            elif dist[u] == d_next:
                cnt[u] += c_w
    for w in visited:
        dist[w] = UNREACHED
        cnt[w] = 0


def _backward_bfs(
    graph: DiGraph,
    h: int,
    ph: int,
    pos: list[int],
    label_in: list[list[Entry]],
    label_out: list[list[Entry]],
    dist: list[int],
    cnt: list[int],
) -> None:
    """Out-label generation for hub ``h_in`` (reverse direction).

    The queue holds original vertices standing for their ``w_out`` side.
    The rank test ``pos[u] >= ph`` admits ``u == h``: dequeuing the hub's own
    couple ``h_out`` records the cycle entry and prunes (Section IV-C
    rule (4)).
    """
    hub_dist: dict[int, int] = {}
    for q, d, _c, canonical in label_in[h]:
        if q >= ph:
            break
        if canonical:
            hub_dist[q] = d
    in_neighbors = graph.in_neighbors

    queue: deque[int] = deque()
    visited: list[int] = []
    for u in in_neighbors(h):
        if pos[u] >= ph:
            dist[u] = 1
            cnt[u] = 1
            queue.append(u)
            visited.append(u)
    while queue:
        w = queue.popleft()
        d_w = dist[w]
        d_via = UNREACHED
        for q, dq, _cq, canonical in label_out[w]:
            if q >= ph:
                break
            if canonical:
                hd = hub_dist.get(q)
                if hd is not None and dq + hd < d_via:
                    d_via = dq + hd
        if d_via < d_w:
            continue
        label_out[w].append((ph, d_w, cnt[w], d_via > d_w))
        if w == h:
            continue  # couple-cycle: cycle entry recorded, prune
        d_next = d_w + 2
        c_w = cnt[w]
        for u in in_neighbors(w):
            if dist[u] == UNREACHED:
                if pos[u] >= ph:
                    dist[u] = d_next
                    cnt[u] = c_w
                    queue.append(u)
                    visited.append(u)
            elif dist[u] == d_next:
                cnt[u] += c_w
    for w in visited:
        dist[w] = UNREACHED
        cnt[w] = 0
