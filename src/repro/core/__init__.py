"""The paper's primary contribution: the CSC index, its dynamic
maintenance, and the user-facing counter facade."""

from repro.core.batch import (
    DEFAULT_REBUILD_THRESHOLD,
    BatchStats,
    apply_batch,
    normalize_batch,
)
from repro.core.csc import CSCIndex
from repro.core.counter import IndexStats, ShortestCycleCounter
from repro.core.labelstore import LabelStore
from repro.core.maintenance import (
    STRATEGIES,
    UpdateStats,
    delete_edge,
    insert_edge,
)

__all__ = [
    "BatchStats",
    "CSCIndex",
    "DEFAULT_REBUILD_THRESHOLD",
    "IndexStats",
    "LabelStore",
    "ShortestCycleCounter",
    "STRATEGIES",
    "UpdateStats",
    "apply_batch",
    "delete_edge",
    "insert_edge",
    "normalize_batch",
]
