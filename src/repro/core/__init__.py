"""The paper's primary contribution: the CSC index, its dynamic
maintenance, and the user-facing counter facade."""

from repro.core.csc import CSCIndex
from repro.core.counter import IndexStats, ShortestCycleCounter
from repro.core.maintenance import (
    STRATEGIES,
    UpdateStats,
    delete_edge,
    insert_edge,
)

__all__ = [
    "CSCIndex",
    "IndexStats",
    "ShortestCycleCounter",
    "STRATEGIES",
    "UpdateStats",
    "delete_edge",
    "insert_edge",
]
