"""Batched dynamic maintenance of the CSC index (BATCH-INCCNT/DECCNT).

The paper's INCCNT/DECCNT (Section V) maintain the index one edge at a
time: every update pays its own affected-hub discovery *and* one repair
BFS per affected hub.  Consecutive stream updates, however, share most of
their affected hubs — a burst of transactions around a hot account keeps
touching the same high-rank hubs — so per-edge processing re-runs nearly
identical repair BFSes over and over.  :func:`apply_batch` amortizes that
work across a whole mixed batch of insertions and deletions:

1. **Normalize** the batch to its *net effect*: ops are validated against
   the evolving in-batch edge state (so ``insert`` of a present edge or
   ``delete`` of an absent one is caught *before* anything mutates), and
   ops that cancel within the batch (insert-then-delete of the same edge,
   or delete-then-reinsert) are dropped outright.  Queries are a pure
   function of the final graph — the maintained index is exact after
   every correct update sequence — so the net batch yields bit-identical
   answers to the sequential op-by-op application, in any replay order.
   The engine replays *all deletions first, then all insertions*.
2. **Deletions, batched** (the expensive side: Figure 12 puts DECCNT one
   to two orders of magnitude above INCCNT).  The four-BFS distance
   conditions of Section V-C are evaluated once per deleted edge on the
   pre-batch graph, and their union is repaired with **one**
   construction-BFS fingerprint replace per distinct affected hub, in
   descending rank order.  A hub touched by ten deletions is repaired
   once, not ten times — that union sharing is where the batch speedup
   comes from.

   *Why the pre-batch union covers everything:* a hub ``h`` outside all
   per-edge conditions has ``sd(h, a) + 1 > sd(h, b)`` for every deleted
   edge ``(a, b)`` (and the mirrored inequality for the out-side), i.e.
   no shortest path from ``h`` (resp. into ``h``) crosses any deleted
   edge.  Removing edges only lengthens distances and existing shortest
   paths survive, so all of ``h``'s distances *and counts* are preserved
   — which inductively keeps the conditions false on every intermediate
   graph of a sequential replay, so sequential DECCNT would never touch
   ``h`` either.  Descending rank order makes the per-hub repairs
   compose exactly like Algorithm 3: each fingerprint BFS reads only
   labels owned by strictly higher-ranked hubs, which are either already
   repaired or were never affected.
3. **Insertions, replayed** through INCCNT's resumed seeded BFS, edge by
   edge, on the post-deletion graph.  INCCNT passes are seed-specific —
   each derives its seeds from the labels *as updated by the previous
   insertions* — so unlike deletions there is no per-hub work to share;
   naive hub merging would double-count shortest paths that traverse
   several new edges.  Replaying keeps insertions at their already-cheap
   per-edge cost (and keeps ``minimality``-strategy CLEAN-LABEL
   semantics exactly sequential) while the batch still wins on the
   deletion side and on the fallback below.

A cost-model fallback bounds the worst case: each fingerprint repair
costs about one hub's construction BFS, and a hub affected on *both*
sides pays two (its in-side and its out-side fingerprints are separate
BFSes), so once the total repair-side count exceeds
``rebuild_threshold`` as a fraction of all vertices, a single
from-scratch build of the final graph (the paper's Figure 11/12
strawman) is the cheaper plan and :func:`apply_batch` takes it instead.
Past the threshold — or when the serving engine defers the batch — the
repair loop itself can run on the PR 4 worker pool; see
:mod:`repro.core.parallel_repair`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence

from repro.core.csc import CSCIndex
from repro.core.maintenance import (
    _check_strategy,
    _repair_hub,
    deletion_affected_hubs,
    insert_edge,
)
from repro.errors import (
    ConfigurationError,
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexError,
)

__all__ = ["BatchStats", "apply_batch", "normalize_batch",
           "DEFAULT_REBUILD_THRESHOLD"]

#: Rebuild from scratch once this fraction of all hubs needs a
#: fingerprint repair.
DEFAULT_REBUILD_THRESHOLD = 0.25

Op = tuple[str, int, int]


@dataclass
class BatchStats:
    """Instrumentation for one batched update (mirrors
    :class:`~repro.core.maintenance.UpdateStats` so the two can share an
    update log; the extra fields describe the batch itself)."""

    operation: str = "batch"
    strategy: str = "redundancy"
    #: ops handed to :func:`apply_batch`, before normalization
    submitted: int = 0
    #: net edge insertions / deletions applied to the graph
    inserted: int = 0
    deleted: int = 0
    #: infeasible ops dropped in ``on_invalid="skip"`` mode
    skipped: list[Op] = field(default_factory=list)
    #: feasible ops that cancelled out within the batch (net no-ops)
    cancelled: int = 0
    #: repair/update passes run (0 when the rebuild fallback ran)
    hubs_processed: int = 0
    #: fingerprint-repair BFSes actually run — one per repaired *side*,
    #: so a hub repaired on both sides counts twice (``hubs_processed``
    #: counts it once)
    repair_bfs_count: int = 0
    vertices_visited: int = 0
    entries_added: int = 0
    entries_updated: int = 0
    entries_removed: int = 0
    #: deletion-affected repair *sides* / n — the rebuild cost model's
    #: input.  Each side is one fingerprint-repair BFS, so a hub affected
    #: on both sides counts twice and the fraction can reach 2.0.
    affected_hub_fraction: float = 0.0
    #: True when the cost model chose a from-scratch rebuild
    rebuilt: bool = False
    details: dict = field(default_factory=dict)

    @property
    def applied(self) -> int:
        """Net edge mutations applied to the graph."""
        return self.inserted + self.deleted

    @property
    def net_entry_delta(self) -> int:
        """Net change in stored label entries (incremental path only)."""
        return self.entries_added - self.entries_removed


def normalize_batch(
    graph, ops: Iterable[Op], on_invalid: str = "raise"
) -> tuple[list[tuple[int, int]], list[tuple[int, int]], list[Op], int]:
    """Reduce an op sequence to its net effect against ``graph``.

    Replays the ops over a virtual edge state (the graph is not touched),
    validating each against the state *at its point in the sequence* — so
    ``[insert e, insert e]`` is invalid even when ``e`` starts absent, and
    ``[insert e, delete e]`` is a feasible net no-op.

    Returns ``(net_inserts, net_deletes, skipped, submitted)``.  Malformed
    ops (unknown op name, out-of-range vertex, self loop) always raise;
    presence conflicts raise :class:`EdgeExistsError` /
    :class:`EdgeNotFoundError` under ``on_invalid="raise"`` (the default —
    and because normalization runs before any mutation, a raising batch
    leaves graph and index completely untouched) or are dropped and
    reported under ``on_invalid="skip"``.
    """
    if on_invalid not in ("raise", "skip"):
        raise ConfigurationError(
            f"on_invalid must be 'raise' or 'skip', got {on_invalid!r}"
        )
    n = graph.n
    state: dict[tuple[int, int], bool] = {}
    skipped: list[Op] = []
    submitted = 0
    for op, a, b in ops:
        submitted += 1
        if op not in ("insert", "delete"):
            raise ConfigurationError(f"unknown batch op {op!r}")
        if not 0 <= a < n:
            raise VertexError(a, n)
        if not 0 <= b < n:
            raise VertexError(b, n)
        if a == b:
            raise SelfLoopError(a)
        key = (a, b)
        present = state.get(key)
        if present is None:
            present = graph.has_edge(a, b)
        if op == "insert":
            if present:
                if on_invalid == "raise":
                    raise EdgeExistsError(a, b)
                skipped.append((op, a, b))
                continue
            state[key] = True
        else:
            if not present:
                if on_invalid == "raise":
                    raise EdgeNotFoundError(a, b)
                skipped.append((op, a, b))
                continue
            state[key] = False
    net_inserts = [
        e for e, present in state.items() if present and not graph.has_edge(*e)
    ]
    net_deletes = [
        e for e, present in state.items()
        if not present and graph.has_edge(*e)
    ]
    return net_inserts, net_deletes, skipped, submitted


def apply_batch(
    index: CSCIndex,
    ops: Iterable[Op] | Sequence[Op],
    strategy: str = "redundancy",
    rebuild_threshold: float = DEFAULT_REBUILD_THRESHOLD,
    on_invalid: str = "raise",
    workers: int | None = None,
    on_repair_plan: Callable[[set[int], set[int]], None] | None = None,
) -> BatchStats:
    """Apply a mixed batch of ``("insert"|"delete", tail, head)`` ops and
    repair the index with one fingerprint pass per distinct
    deletion-affected hub plus an INCCNT replay of the insertions.

    Produces query results bit-identical to applying the ops one at a time
    through :func:`~repro.core.maintenance.insert_edge` /
    :func:`~repro.core.maintenance.delete_edge` (see the module docstring
    for the argument and ``tests/properties/test_batch_differential.py``
    for the machine-checked version).

    ``workers`` parallelizes the two expensive phases (``None`` consults
    ``$REPRO_BUILD_WORKERS``): the per-hub fingerprint repairs go
    through the speculative pool committer of
    :mod:`repro.core.parallel_repair` (bit-identical to the serial loop
    for any worker count), and a rebuild fallback is handed to
    :meth:`CSCIndex.build` as a parallel build.

    ``on_repair_plan``, when given, is called with ``(del_in, del_out)``
    — the hub-position sets needing forward/backward repair — after
    affected-hub discovery but *before* any graph or label mutation.
    The deferred-repair serving path uses this seam to tombstone exactly
    the hubs whose fingerprints are about to go stale.
    """
    _check_strategy(strategy)
    graph = index.graph
    inserts, deletes, skipped, submitted = normalize_batch(
        graph, ops, on_invalid
    )
    stats = BatchStats(strategy=strategy, submitted=submitted,
                       skipped=skipped)
    stats.inserted = len(inserts)
    stats.deleted = len(deletes)
    stats.cancelled = (
        submitted - len(skipped) - len(inserts) - len(deletes)
    )
    if not inserts and not deletes:
        return stats

    pos = index.pos
    order = index.order

    # -- union of affected hubs of every deletion, on the pre-batch graph
    # (batch edges often share endpoints, so the four per-edge BFSes are
    # memoized per source across the whole batch)
    del_in: set[int] = set()   # hub positions needing a forward repair
    del_out: set[int] = set()  # hub positions needing a backward repair
    forward_dists: dict[int, list[float]] = {}
    reverse_dists: dict[int, list[float]] = {}
    phase_start = time.perf_counter()
    for a, b in deletes:
        aff_in, aff_out = deletion_affected_hubs(
            index, a, b, forward_dists, reverse_dists
        )
        del_in.update(pos[v] for v in aff_in)
        del_out.update(pos[v] for v in aff_out)
    stats.details["discovery_wall_s"] = time.perf_counter() - phase_start

    repair_hubs = del_in | del_out
    # Price per repair *side*: a hub in both del_in and del_out costs two
    # fingerprint BFSes, so |del_in| + |del_out| (not the union) is the
    # BFS count the rebuild is weighed against.
    stats.affected_hub_fraction = (
        (len(del_in) + len(del_out)) / graph.n if graph.n else 0.0
    )
    stats.details["affected_in_hubs"] = len(del_in)
    stats.details["affected_out_hubs"] = len(del_out)

    if on_repair_plan is not None:
        on_repair_plan(del_in, del_out)

    for a, b in deletes:
        graph.remove_edge(a, b)

    # -- cost-model fallback: each fingerprint repair costs about one
    # construction BFS, so past the threshold one full build is cheaper.
    if stats.affected_hub_fraction > rebuild_threshold:
        for a, b in inserts:
            graph.add_edge(a, b)
        phase_start = time.perf_counter()
        fresh = CSCIndex.build(graph, order, workers=workers)
        index.adopt_labels(fresh)
        stats.details["rebuild_wall_s"] = time.perf_counter() - phase_start
        stats.rebuilt = True
        return stats

    # -- one fingerprint repair per distinct hub side, descending rank --
    if repair_hubs:
        phase_start = time.perf_counter()
        index.ensure_inverted()
        # Lazy: pulling the pool machinery in at module scope would
        # cycle through repro.build (same reason CSCIndex.build defers).
        from repro.build.parallel import resolve_workers
        from repro.core.parallel_repair import (
            PARALLEL_REPAIR_MIN_SIDES,
            repair_hubs_parallel,
        )

        n_workers = resolve_workers(workers)
        sides = len(del_in) + len(del_out)
        if n_workers > 1 and sides >= PARALLEL_REPAIR_MIN_SIDES:
            conflicts = repair_hubs_parallel(
                index, del_in, del_out, n_workers, stats
            )
            stats.details["repair_workers"] = n_workers
            stats.details["repair_conflicts"] = conflicts
        else:
            for p in sorted(repair_hubs):
                stats.hubs_processed += 1
                h = order[p]
                if p in del_in:
                    _repair_hub(index, h, forward=True, stats=stats)
                if p in del_out:
                    _repair_hub(index, h, forward=False, stats=stats)
        stats.details["repair_wall_s"] = time.perf_counter() - phase_start

    # -- INCCNT replay of the insertions on the post-deletion graph ------
    for a, b in inserts:
        sub = insert_edge(index, a, b, strategy)
        stats.hubs_processed += sub.hubs_processed
        stats.repair_bfs_count += sub.repair_bfs_count
        stats.vertices_visited += sub.vertices_visited
        stats.entries_added += sub.entries_added
        stats.entries_updated += sub.entries_updated
        stats.entries_removed += sub.entries_removed
    return stats
