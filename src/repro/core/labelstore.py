"""Packed flat-array label store — canonical import path.

The implementation lives in :mod:`repro.labeling.labelstore` (the
labeling layer owns label representations; importing it from ``core``
here would cycle through ``repro.core.__init__`` while
``repro.labeling.hpspc`` is still initializing).  This module is the
documented ``repro.core.labelstore`` entry point used by the index and
maintenance layers.
"""

from repro.labeling.labelstore import (
    COUNT_SATURATED,
    HUB_SHIFT,
    UNREACHED,
    LabelStore,
    LabelTable,
    LabelView,
    coerce_store,
    join_min_count,
    join_min_dist,
)

__all__ = [
    "COUNT_SATURATED",
    "HUB_SHIFT",
    "UNREACHED",
    "LabelStore",
    "LabelTable",
    "LabelView",
    "coerce_store",
    "join_min_count",
    "join_min_dist",
]
