"""Dynamic maintenance of the CSC index (paper Section V).

Edge insertion — INCCNT (Algorithms 5–7)
----------------------------------------
Inserting ``(a, b)`` in ``G0`` inserts ``(a_out, b_in)`` in the implicit
``Gb``.  Affected hubs are read off the labels (Definition V.1):

* forward hubs ``hubA`` from ``Lin(a_out)`` — i.e. the stored
  ``Lin(a_in)`` shifted by the couple edge — restricted to hubs ranked above
  ``b_in`` (every new path contains ``b_in``, so a hub it outranks cannot be
  the path's highest vertex);
* backward hubs ``hubB`` from ``Lout(b_in)`` — ``{b_in}`` plus the stored
  ``Lout(b_out)`` shifted — restricted to hubs ranked above ``a_out``.

Hubs are processed in descending rank order; each runs a resumed counting
BFS seeded with its *label's* count (Theorem V.1), pruned wherever the
tentative distance exceeds the full-index query (Algorithm 6, cases 1–3),
updating entries per Algorithm 7.  Stale seeds (possible under the
redundancy strategy) start strictly above the query distance everywhere and
prune immediately, so they are harmless.

Labels live in the packed flat-array store
(:mod:`repro.labeling.labelstore`), so the repair passes patch 64-bit
entries in place.  Every pruning query is a merge-join over the store's
maintained hub maps: the hub-side map (derived once per pass into a
buffer reused across the whole update) is iterated, and the visited
vertex's map is probed at C dict speed — the seed instead scanned the
vertex's tuple list and, per hub, rebuilt the hub-side dict from
scratch.

Two strategies (Section V-B):

* ``"redundancy"`` (default) — dominated stale entries stay; queries remain
  correct because a stale pair-sum always exceeds the true minimum.
* ``"minimality"`` — every replace/insert triggers CLEAN-LABEL
  (Algorithm 8) over the touched vertex's labels and the inverted indexes,
  restoring Theorem V.3 minimality at much higher cost (Figure 11).

Edge deletion — DECCNT (Section V-C)
------------------------------------
Affected hubs are *all* vertices satisfying the paper's distance conditions
(computed exactly with four plain BFSes on the pre-deletion graph):
``hubA = {v : sd(v,a) + 1 = sd(v,b)}`` and
``hubB = {u : sd(b,u) + 1 = sd(a,u)}``.  For each affected hub in descending
rank order we re-run the construction BFS on ``G-`` and *replace the hub's
whole label fingerprint*: fresh entries are upserted and entries the fresh
BFS no longer justifies are dropped via the inverted index.  This implements
the paper's "delete a superset, then re-add by BFS from each affected hub"
and is what makes deletions one-to-two orders slower than insertions
(Figure 12(a) vs 11(a)).  It also scrubs any redundancy-mode leftovers of
the affected hubs, which is required for correctness: a deletion can raise a
true distance up to a stale entry's value, at which point that entry would
otherwise re-enter query minima with a rotten count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.csc import CSCIndex
from repro.errors import ConfigurationError
from repro.graph.traversal import INF, bfs_distances
from repro.labeling.labelstore import UNREACHED, LabelStore

__all__ = [
    "UpdateStats",
    "insert_edge",
    "delete_edge",
    "deletion_affected_hubs",
    "STRATEGIES",
]

STRATEGIES = ("redundancy", "minimality")


@dataclass
class UpdateStats:
    """Instrumentation for one index update (Figures 11(b) / 12(b))."""

    operation: str
    edge: tuple[int, int]
    strategy: str = "redundancy"
    hubs_processed: int = 0
    #: fingerprint-repair BFSes run, one per repaired side — a hub
    #: repaired on both sides counts twice (deletions only)
    repair_bfs_count: int = 0
    vertices_visited: int = 0
    entries_added: int = 0
    entries_updated: int = 0
    entries_removed: int = 0
    details: dict = field(default_factory=dict)

    @property
    def net_entry_delta(self) -> int:
        """Net change in stored label entries."""
        return self.entries_added - self.entries_removed


def _check_strategy(strategy: str) -> None:
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )


def _canonical_shift_map(
    store: LabelStore, v: int, limit_hub: int, shift: int
) -> dict[int, int]:
    """``{hub: dist + shift}`` over ``v``'s canonical entries whose hub
    ranks strictly above ``limit_hub`` (i.e. ``hub < limit_hub``)."""
    maps = store._maps or store.ensure_maps()
    return {
        h: dc[0] + shift
        for h, dc in maps[v].items()
        if h < limit_hub and dc[2]
    }


# ---------------------------------------------------------------------------
# Incremental update (Algorithm 5: INCCNT)
# ---------------------------------------------------------------------------


def insert_edge(
    index: CSCIndex, a: int, b: int, strategy: str = "redundancy"
) -> UpdateStats:
    """Insert edge ``(a, b)`` into the graph and update the index (INCCNT).

    Raises :class:`~repro.errors.EdgeExistsError` (before touching the
    index) if the edge is already present.
    """
    _check_strategy(strategy)
    index.graph.add_edge(a, b)
    index.ensure_inverted()
    stats = UpdateStats("insert", (a, b), strategy)
    pos = index.pos
    pa, pb = pos[a], pos[b]
    maps_in = index.store_in.ensure_maps()
    maps_out = index.store_out.ensure_maps()

    forward_seeds: dict[int, tuple[int, int]] = {}
    for q, dc in maps_in[a].items():
        if q < pb:
            # sd(q_in, a_out) = d + 1; BFS starts at b_in one edge later.
            forward_seeds[q] = (dc[0] + 2, dc[1])
    backward_seeds: dict[int, tuple[int, int]] = {}
    if pb <= pa:
        backward_seeds[pb] = (1, 1)  # hub b_in itself: a_out -> b_in
    for q, dc in maps_out[b].items():
        if q != pb and q <= pa:
            # sd(b_in, q_in) = d + 1; reverse BFS starts at a_out.
            backward_seeds[q] = (dc[0] + 2, dc[1])

    # Hub-side full-map buffers, reused across every hub of this update.
    full_buf: dict[int, int] = {}
    for q in sorted(set(forward_seeds) | set(backward_seeds)):
        stats.hubs_processed += 1
        seed = forward_seeds.get(q)
        if seed is not None:
            _forward_pass(
                index, q, b, seed[0], seed[1], strategy, stats, full_buf
            )
        seed = backward_seeds.get(q)
        if seed is not None:
            _backward_pass(
                index, q, a, seed[0], seed[1], strategy, stats, full_buf
            )
    return stats


def _forward_pass(
    index: CSCIndex,
    q: int,
    start: int,
    d0: int,
    c0: int,
    strategy: str,
    stats: UpdateStats,
    out_full: dict[int, int],
) -> None:
    """Algorithm 6 (FORWARD-PASS): update in-labels below hub ``q``."""
    graph = index.graph
    pos = index.pos
    store_in = index.store_in
    hub_vertex = index.order[q]
    # Full and canonical views of the derived Lout(q_in); the full map
    # fills a buffer reused across the whole insert.
    out_full.clear()
    out_full[q] = 0
    for q2, dc in index.store_out.ensure_maps()[hub_vertex].items():
        if q2 != q:
            out_full[q2] = dc[0] + 1
    out_canon = _canonical_shift_map(index.store_out, hub_vertex, q, 1)

    maps_in = store_in.ensure_maps()
    full_items = list(out_full.items())
    dist: dict[int, int] = {start: d0}
    cnt: dict[int, int] = {start: c0}
    queue: deque[int] = deque((start,))
    while queue:
        w = queue.popleft()
        d_w = dist[w]
        stats.vertices_visited += 1
        # Full-index pruning query (Algorithm 6): every hub of the derived
        # Lout(q_in) ranks at or above q, so probing w's full map against
        # those hubs covers exactly the seed's <=q label prefix scan.
        d_query = UNREACHED
        get = maps_in[w].get
        for h2, od in full_items:
            t = get(h2)
            if t is not None:
                d2 = od + t[0]
                if d2 < d_query:
                    d_query = d2
        if d_w > d_query:
            continue  # Case 1: not on a new shortest path
        _update_entry(
            index, store_in, index._inv_in, w, q, d_w, cnt[w],
            out_canon, forward=True, strategy=strategy, stats=stats,
        )
        d_next = d_w + 2
        c_w = cnt[w]
        for u in graph.out_neighbors(w):
            if pos[u] > q:
                d_u = dist.get(u)
                if d_u is None:
                    dist[u] = d_next
                    cnt[u] = c_w
                    queue.append(u)
                elif d_u == d_next:
                    cnt[u] += c_w


def _backward_pass(
    index: CSCIndex,
    q: int,
    start: int,
    d0: int,
    c0: int,
    strategy: str,
    stats: UpdateStats,
    in_full: dict[int, int],
) -> None:
    """BACKWARD-PASS: update out-labels below hub ``q`` (reverse BFS)."""
    graph = index.graph
    pos = index.pos
    store_out = index.store_out
    hub_vertex = index.order[q]
    in_full.clear()
    for q2, dc in index.store_in.ensure_maps()[hub_vertex].items():
        in_full[q2] = dc[0]
    in_canon = _canonical_shift_map(index.store_in, hub_vertex, q, 0)

    maps_out = store_out.ensure_maps()
    full_items = list(in_full.items())
    dist: dict[int, int] = {start: d0}
    cnt: dict[int, int] = {start: c0}
    queue: deque[int] = deque((start,))
    while queue:
        w = queue.popleft()
        d_w = dist[w]
        stats.vertices_visited += 1
        d_query = UNREACHED
        get = maps_out[w].get
        for h2, od in full_items:
            t = get(h2)
            if t is not None:
                d2 = od + t[0]
                if d2 < d_query:
                    d_query = d2
        if d_w > d_query:
            continue
        _update_entry(
            index, store_out, index._inv_out, w, q, d_w, cnt[w],
            in_canon, forward=False, strategy=strategy, stats=stats,
        )
        if w == hub_vertex:
            continue  # couple-cycle: cycle entry updated, prune
        d_next = d_w + 2
        c_w = cnt[w]
        for u in graph.in_neighbors(w):
            if pos[u] >= q:
                d_u = dist.get(u)
                if d_u is None:
                    dist[u] = d_next
                    cnt[u] = c_w
                    queue.append(u)
                elif d_u == d_next:
                    cnt[u] += c_w


def _update_entry(
    index: CSCIndex,
    store: LabelStore,
    inv: list[set[int]] | None,
    w: int,
    q: int,
    d: int,
    c: int,
    hub_canon: dict[int, int],
    forward: bool,
    strategy: str,
    stats: UpdateStats,
) -> None:
    """Algorithm 7 (UPDATE-LABEL) with canonical-flag recomputation —
    patches the packed entry in place."""
    # Canonical distance via strictly higher canonical hubs, for the flag
    # (hub_canon's keys all rank strictly above q by construction).
    d_canon = UNREACHED
    get = (store._maps or store.ensure_maps())[w].get
    for h2, od in hub_canon.items():
        t = get(h2)
        if t is not None and t[2]:
            d2 = od + t[0]
            if d2 < d_canon:
                d_canon = d2
    flag = d_canon > d
    i = store.hub_index(w, q)
    if i >= 0:
        _q, d_old, c_old, _f_old = store.decode(w, i)
        if d < d_old:
            store.set_at(w, i, q, d, c, flag)
            stats.entries_updated += 1
            if strategy == "minimality":
                _clean_vertex(index, w, forward, stats)
        elif d == d_old:
            store.set_at(w, i, q, d, c_old + c, flag)
            stats.entries_updated += 1
        # d > d_old is impossible: the pruning query is bounded by d_old.
    else:
        store.insert_sorted(w, q, d, c, flag)
        if inv is not None:
            inv[q].add(w)
        stats.entries_added += 1
        if strategy == "minimality":
            _clean_vertex(index, w, forward, stats)


# ---------------------------------------------------------------------------
# CLEAN-LABEL (Algorithm 8) — minimality strategy
# ---------------------------------------------------------------------------


def _clean_vertex(
    index: CSCIndex, w: int, forward: bool, stats: UpdateStats
) -> None:
    """Remove every redundant entry made observable by an update at ``w``.

    Forward case: scrub ``Lin(w)`` and out-labels of other vertices whose
    hub is ``w_in``; backward case: mirror image.
    """
    inv_in, inv_out = index.ensure_inverted()
    order = index.order
    if forward:
        store = index.store_in
        entries = store.entries(w)
        keep = []
        for entry in entries:
            q2, d2, _c2, _f2 = entry
            if d2 > index.qdist_in_in(order[q2], w):
                inv_in[q2].discard(w)
                stats.entries_removed += 1
            else:
                keep.append(entry)
        if len(keep) != len(entries):
            store.replace_vertex(w, keep)
        hub_w = index.pos[w]
        other = index.store_out
        for v in list(inv_out[hub_w]):
            i = other.hub_index(v, hub_w)
            if i < 0:
                inv_out[hub_w].discard(v)
                continue
            if other.decode(v, i)[1] > index.qdist_out_in(v, w):
                other.delete_at(v, i)
                inv_out[hub_w].discard(v)
                stats.entries_removed += 1
    else:
        store = index.store_out
        entries = store.entries(w)
        keep = []
        for entry in entries:
            q2, d2, _c2, _f2 = entry
            if d2 > index.qdist_out_in(w, order[q2]):
                inv_out[q2].discard(w)
                stats.entries_removed += 1
            else:
                keep.append(entry)
        if len(keep) != len(entries):
            store.replace_vertex(w, keep)
        hub_w = index.pos[w]
        other = index.store_in
        for v in list(inv_in[hub_w]):
            i = other.hub_index(v, hub_w)
            if i < 0:
                inv_in[hub_w].discard(v)
                continue
            if other.decode(v, i)[1] > index.qdist_in_in(w, v):
                other.delete_at(v, i)
                inv_in[hub_w].discard(v)
                stats.entries_removed += 1


# ---------------------------------------------------------------------------
# Decremental update (Section V-C: DECCNT)
# ---------------------------------------------------------------------------


def deletion_affected_hubs(
    index: CSCIndex,
    a: int,
    b: int,
    forward_dists: dict[int, list[float]] | None = None,
    reverse_dists: dict[int, list[float]] | None = None,
) -> tuple[set[int], set[int]]:
    """Affected hubs of deleting ``(a, b)``: the Section V-C distance
    conditions, evaluated on the *current* graph (which must still
    contain the edge).

    Returns ``(aff_in, aff_out)`` as original-vertex sets: hubs whose
    in-side (forward) respectively out-side (backward) labels need a
    repair BFS once the edge is gone.

    ``forward_dists`` / ``reverse_dists`` are optional per-source BFS
    caches (``{source: bfs_distances(...)}``) for callers that evaluate
    many deletions against one frozen graph — the batch engine's edges
    often share endpoints, so the same BFS would otherwise rerun.
    """
    graph = index.graph

    def _dist(source: int, reverse: bool) -> list[float]:
        cache = reverse_dists if reverse else forward_dists
        if cache is None:
            return bfs_distances(graph, source, reverse=reverse)
        dist = cache.get(source)
        if dist is None:
            dist = cache[source] = bfs_distances(
                graph, source, reverse=reverse
            )
        return dist

    d_to_a = _dist(a, True)
    d_to_b = _dist(b, True)
    d_from_a = _dist(a, False)
    d_from_b = _dist(b, False)
    aff_in = {
        v
        for v in graph.vertices()
        if d_to_b[v] is not INF and d_to_a[v] + 1 == d_to_b[v]
    }
    aff_out = {
        u
        for u in graph.vertices()
        if d_from_a[u] is not INF and d_from_b[u] + 1 == d_from_a[u]
    }
    # The one Gb pair the hop conditions cannot see is the cycle pair
    # (a_out, a_in): its distance is the cycle length through `a`, not a
    # plain 2d-1 hop distance.  If the deleted edge lies on a shortest
    # cycle through `a`, hub a_in's cycle entry must be repaired too.
    if (
        d_from_b[a] is not INF
        and index.cycle_gb_distance(a) == 2 * (d_from_b[a] + 1) - 1
    ):
        aff_out.add(a)
    return aff_in, aff_out


def delete_edge(index: CSCIndex, a: int, b: int) -> UpdateStats:
    """Delete edge ``(a, b)`` from the graph and repair the index (DECCNT).

    Raises :class:`~repro.errors.EdgeNotFoundError` (before touching the
    index) if the edge is absent.
    """
    graph = index.graph
    if not graph.has_edge(a, b):
        from repro.errors import EdgeNotFoundError

        raise EdgeNotFoundError(a, b)
    # Pre-deletion hop BFSes give the affected-hub conditions exactly.
    aff_in, aff_out = deletion_affected_hubs(index, a, b)
    graph.remove_edge(a, b)
    index.ensure_inverted()
    stats = UpdateStats("delete", (a, b))
    stats.details["affected_in_hubs"] = len(aff_in)
    stats.details["affected_out_hubs"] = len(aff_out)
    pos = index.pos
    for h in sorted(aff_in | aff_out, key=lambda v: pos[v]):
        stats.hubs_processed += 1
        if h in aff_in:
            _repair_hub(index, h, forward=True, stats=stats)
        if h in aff_out:
            _repair_hub(index, h, forward=False, stats=stats)
    return stats


def _repair_hub(
    index: CSCIndex, h: int, forward: bool, stats: UpdateStats
) -> list[int]:
    """Re-run the construction BFS for hub ``h_in`` on the current graph and
    replace the hub's label fingerprint (fresh upserts + stale removals),
    patching packed entries in place.  Returns the vertices whose stored
    labels actually changed (the parallel repair committer's write set)."""
    graph = index.graph
    pos = index.pos
    ph = pos[h]
    stats.repair_bfs_count += 1
    inv_in, inv_out = index.ensure_inverted()
    if forward:
        target = index.store_in
        inv = inv_in
        neighbors = graph.out_neighbors
        hub_dist = _canonical_shift_map(index.store_out, h, ph, 1)
        rank_ok = lambda u: pos[u] > ph  # noqa: E731
        seeds = [(h, 0, 1)]
    else:
        target = index.store_out
        inv = inv_out
        neighbors = graph.in_neighbors
        hub_dist = _canonical_shift_map(index.store_in, h, ph, 0)
        rank_ok = lambda u: pos[u] >= ph  # noqa: E731
        seeds = [(u, 1, 1) for u in graph.in_neighbors(h) if pos[u] >= ph]

    target_maps = target.ensure_maps()
    hub_items = list(hub_dist.items())
    dist: dict[int, int] = {}
    cnt: dict[int, int] = {}
    queue: deque[int] = deque()
    for vertex, d0, c0 in seeds:
        dist[vertex] = d0
        cnt[vertex] = c0
        queue.append(vertex)
    fresh: dict[int, tuple[int, int, bool]] = {}
    while queue:
        w = queue.popleft()
        d_w = dist[w]
        stats.vertices_visited += 1
        # Pruning query over canonical entries of strictly higher hubs:
        # iterate the hub-side canonical map (keys rank above ph), probe
        # w's maintained map, keep canonical matches only.
        d_via = UNREACHED
        get = target_maps[w].get
        for h2, hd in hub_items:
            t = get(h2)
            if t is not None and t[2]:
                d2 = hd + t[0]
                if d2 < d_via:
                    d_via = d2
        if d_via < d_w:
            continue
        fresh[w] = (d_w, cnt[w], d_via > d_w)
        if not forward and w == h:
            continue  # couple-cycle prune
        d_next = d_w + 2
        c_w = cnt[w]
        for u in neighbors(w):
            if rank_ok(u):
                d_u = dist.get(u)
                if d_u is None:
                    dist[u] = d_next
                    cnt[u] = c_w
                    queue.append(u)
                elif d_u == d_next:
                    cnt[u] += c_w

    return _commit_fingerprint(target, inv, ph, fresh, stats)


def _commit_fingerprint(
    target: LabelStore,
    inv: list[set[int]],
    ph: int,
    fresh: dict[int, tuple[int, int, bool]],
    stats: UpdateStats,
) -> list[int]:
    """Replace hub ``ph``'s fingerprint on ``target`` with ``fresh``
    (upserts + stale removals via the inverted index), patching packed
    entries in place.  Shared by the serial repair above and the
    speculative commits of :mod:`repro.core.parallel_repair`.  Returns
    the vertices whose stored labels actually changed."""
    changed: list[int] = []
    stale = inv[ph] - fresh.keys()
    for w, (d, c, flag) in fresh.items():
        i = target.hub_index(w, ph)
        if i >= 0:
            if target.decode(w, i)[1:] != (d, c, flag):
                target.set_at(w, i, ph, d, c, flag)
                stats.entries_updated += 1
                changed.append(w)
        else:
            target.insert_sorted(w, ph, d, c, flag)
            inv[ph].add(w)
            stats.entries_added += 1
            changed.append(w)
    for w in stale:
        i = target.hub_index(w, ph)
        if i >= 0:
            target.delete_at(w, i)
            stats.entries_removed += 1
            changed.append(w)
        inv[ph].discard(w)
    return changed
