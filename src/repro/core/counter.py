"""High-level facade: a dynamic shortest-cycle counter.

:class:`ShortestCycleCounter` bundles a graph, its CSC index, and the
dynamic maintenance algorithms behind the interface an application would
actually use — the "system" view of the paper:

>>> from repro import DiGraph, ShortestCycleCounter
>>> g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
>>> counter = ShortestCycleCounter.build(g)
>>> counter.count(0)
CycleCount(count=1, length=3)
>>> counter.insert_edge(3, 0)
>>> counter.count(3)
CycleCount(count=1, length=4)
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING

from repro.core.batch import (
    DEFAULT_REBUILD_THRESHOLD,
    BatchStats,
    apply_batch,
)
from repro.core.csc import CSCIndex
from repro.core.maintenance import (
    STRATEGIES,
    UpdateStats,
    delete_edge,
    insert_edge,
)
from repro.graph.digraph import DiGraph
from repro.graph.io import graph_from_bytes, graph_to_bytes
from repro.types import CycleCount, PathCount

from repro.errors import ConfigurationError, VertexError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.snapshot import Snapshot

__all__ = ["ShortestCycleCounter", "IndexStats"]


class IndexStats(dict):
    """Index statistics as a plain dict with attribute access."""

    __getattr__ = dict.__getitem__


class ShortestCycleCounter:
    """Dynamic ``SCCnt`` queries over a directed graph via the CSC index.

    Construct with :meth:`build`.  The counter owns its graph copy: edge
    updates must go through :meth:`insert_edge` / :meth:`delete_edge` so the
    index stays consistent with the graph.
    """

    def __init__(self, index: CSCIndex, strategy: str = "redundancy") -> None:
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        self._index = index
        self._strategy = strategy
        self._updates: list[UpdateStats | BatchStats] = []

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: DiGraph,
        order: Sequence[int] | None = None,
        strategy: str = "redundancy",
        copy_graph: bool = True,
        workers: int | None = None,
    ) -> ShortestCycleCounter:
        """Build a counter over ``graph``.

        ``strategy`` selects the maintenance mode for subsequent insertions
        (``"redundancy"``, the paper's recommendation, or ``"minimality"``).
        The graph is copied by default so outside mutation cannot
        desynchronize the index.  ``workers`` selects multi-process index
        construction (``None`` consults ``$REPRO_BUILD_WORKERS``); the
        result is bit-identical to a serial build.
        """
        g = graph.copy() if copy_graph else graph
        return cls(CSCIndex.build(g, order, workers=workers), strategy)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def count(self, v: int) -> CycleCount:
        """Number and length of the shortest cycles through ``v``."""
        return self._index.sccnt(v)

    def count_many(
        self, vertices: Sequence[int], *, workers: int | None = None
    ) -> list[CycleCount]:
        """Batch form of :meth:`count` (vectorized when NumPy is
        available, bit-identical to a scalar loop either way;
        ``workers > 1`` fans the batch out across the build pool)."""
        return self._index.sccnt_many(vertices, workers=workers)

    def sccnt(self, v: int) -> CycleCount:
        """:class:`~repro.service.QueryAPI` spelling of :meth:`count`
        (the paper's name for the query); unlike the historical
        :meth:`count`, an out-of-range vertex raises the taxonomy's
        :class:`~repro.errors.VertexError` — uniform across every
        protocol backend."""
        n = self.graph.n
        if not 0 <= v < n:
            raise VertexError(v, n)
        return self._index.sccnt(v)

    def sccnt_many(self, vertices: Sequence[int]) -> list[CycleCount]:
        """:class:`~repro.service.QueryAPI` spelling of
        :meth:`count_many`."""
        return self._index.sccnt_many(vertices)

    def spcnt(self, x: int, y: int) -> PathCount:
        """Count and length of the shortest ``x -> y`` paths (answered
        from the cycle labels; see :meth:`CSCIndex.spcnt`)."""
        return self._index.spcnt(x, y)

    def spcnt_many(
        self,
        pairs: Sequence[tuple[int, int]],
        *,
        workers: int | None = None,
    ) -> list[PathCount]:
        """Batch form of :meth:`spcnt` (same contract as
        :meth:`count_many`)."""
        return self._index.spcnt_many(pairs, workers=workers)

    def snapshot(self, epoch: int = 0, ops_applied: int = 0) -> Snapshot:
        """An immutable, epoch-stamped view of the current state.

        The returned :class:`repro.service.Snapshot` answers
        :meth:`count` / :meth:`spcnt` / :meth:`top_suspicious` from the
        labels as they are *now*; later updates through this counter
        copy-on-write around it.  Take snapshots only from the thread
        applying updates; read them from anywhere (this is the
        publication primitive of :class:`repro.service.ServeEngine`).
        """
        from repro.service.snapshot import Snapshot

        return Snapshot.capture(self, epoch=epoch, ops_applied=ops_applied)

    def top_suspicious(self, k: int = 10) -> list[tuple[int, CycleCount]]:
        """The ``k`` vertices with the most shortest cycles (ties broken by
        shorter cycle length, then id) — the paper's fraud pre-screening
        criterion (Application 1, Figure 13)."""
        scored = [(v, self._index.sccnt(v)) for v in self.graph.vertices()]
        scored.sort(key=lambda item: (-item[1].count, item[1].length, item[0]))
        return scored[:k]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, tail: int, head: int) -> UpdateStats:
        """Insert an edge and incrementally maintain the index (INCCNT)."""
        stats = insert_edge(self._index, tail, head, self._strategy)
        self._updates.append(stats)
        return stats

    def delete_edge(self, tail: int, head: int) -> UpdateStats:
        """Delete an edge and repair the index (DECCNT)."""
        stats = delete_edge(self._index, tail, head)
        self._updates.append(stats)
        return stats

    def apply_batch(
        self,
        ops: Iterable[tuple[str, int, int]],
        rebuild_threshold: float = DEFAULT_REBUILD_THRESHOLD,
        on_invalid: str = "raise",
        workers: int | None = None,
        on_repair_plan: Callable[[set[int], set[int]], None] | None = None,
    ) -> BatchStats:
        """Apply a mixed batch of ``("insert"|"delete", tail, head)`` ops
        with one repair pass per distinct affected hub (BATCH-INCCNT/
        DECCNT), falling back to a full rebuild when more than
        ``rebuild_threshold`` of all hubs are affected.

        Infeasible ops — inserting a present edge or deleting an absent
        one, judged against the edge state at that point *within* the
        batch — raise before anything mutates (``on_invalid="raise"``,
        the default) or are skipped and reported in the returned stats
        (``on_invalid="skip"``).
        """
        stats = apply_batch(
            self._index,
            ops,
            self._strategy,
            rebuild_threshold=rebuild_threshold,
            on_invalid=on_invalid,
            workers=workers,
            on_repair_plan=on_repair_plan,
        )
        self._updates.append(stats)
        return stats

    def insert_edges(
        self,
        edges: Sequence[tuple[int, int]],
        on_invalid: str = "raise",
    ) -> BatchStats:
        """Insert a batch of edges through :meth:`apply_batch` (one repair
        pass per distinct affected hub instead of one per edge)."""
        return self.apply_batch(
            [("insert", tail, head) for tail, head in edges],
            on_invalid=on_invalid,
        )

    def delete_edges(
        self,
        edges: Sequence[tuple[int, int]],
        on_invalid: str = "raise",
    ) -> BatchStats:
        """Delete a batch of edges through :meth:`apply_batch`."""
        return self.apply_batch(
            [("delete", tail, head) for tail, head in edges],
            on_invalid=on_invalid,
        )

    def detach_vertex(self, v: int) -> BatchStats:
        """Remove every edge incident to ``v`` as one batch.

        The paper models vertex deletion as a series of edge deletions
        (Section II); the vertex itself stays as an isolated id so other
        ids remain stable.
        """
        out_edges = [(v, u) for u in list(self.graph.out_neighbors(v))]
        in_edges = [(u, v) for u in list(self.graph.in_neighbors(v))]
        return self.delete_edges(out_edges + in_edges)

    def add_vertex(self) -> int:
        """Append a new isolated vertex and extend the index for it.

        An isolated vertex has empty cycle labels except its own self
        entry, so only bookkeeping grows; connect it with
        :meth:`insert_edge` afterwards (the paper's vertex-insertion
        model).
        """
        index = self._index
        v = index.graph.add_vertex()
        index.order.append(v)
        index.pos.append(len(index.order) - 1)
        index.store_in.add_vertex([(index.pos[v], 0, 1, True)])
        index.store_out.add_vertex()
        if index._inv_in is not None:
            index._inv_in.append({v})
            index._inv_out.append(set())
        return v

    def rebuild(self) -> None:
        """Reconstruct the index from scratch (the paper's strawman for
        dynamic graphs; exposed for the Figure 11 comparison)."""
        self._index = CSCIndex.build(self.graph, self._index.order)
        self._updates.clear()

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The underlying graph (mutate only via this counter)."""
        return self._index.graph

    @property
    def index(self) -> CSCIndex:
        """The underlying CSC index."""
        return self._index

    @property
    def strategy(self) -> str:
        """Maintenance strategy for insertions."""
        return self._strategy

    @property
    def epoch(self) -> int:
        """Updates applied through this counter so far — the live
        counter's reading of the :class:`~repro.service.QueryAPI` state
        version (a published :class:`~repro.service.Snapshot` reports
        its publication epoch instead).  Resets with :meth:`rebuild`,
        which also clears :attr:`update_log`."""
        return len(self._updates)

    @property
    def update_log(self) -> list[UpdateStats | BatchStats]:
        """Stats of every update applied through this counter
        (:class:`UpdateStats` for single edges, :class:`BatchStats` for
        batches)."""
        return list(self._updates)

    def stats(self) -> IndexStats:
        """Index and graph statistics, including aggregated update and
        batch counters."""
        edges_inserted = edges_deleted = batches_applied = 0
        batch_rebuilds = 0
        for record in self._updates:
            if isinstance(record, BatchStats):
                batches_applied += 1
                edges_inserted += record.inserted
                edges_deleted += record.deleted
                batch_rebuilds += record.rebuilt
            elif record.operation == "insert":
                edges_inserted += 1
            elif record.operation == "delete":
                edges_deleted += 1
        return IndexStats(
            n=self.graph.n,
            m=self.graph.m,
            label_entries=self._index.total_entries(),
            size_bytes=self._index.size_bytes(),
            average_label_size=self._index.average_label_size(),
            strategy=self._strategy,
            updates_applied=len(self._updates),
            edges_inserted=edges_inserted,
            edges_deleted=edges_deleted,
            batches_applied=batches_applied,
            batch_rebuilds=batch_rebuilds,
        )

    def to_bytes(self) -> bytes:
        """Graph + index as one self-contained blob (an 8-byte graph
        length, the graph blob, then the RPCI index blob).  This is the
        payload format of full checkpoints in :mod:`repro.persist` and
        of :meth:`save` files."""
        graph_blob = graph_to_bytes(self.graph)
        index_blob = self._index.to_bytes()
        header = len(graph_blob).to_bytes(8, "little")
        return header + graph_blob + index_blob

    @classmethod
    def from_bytes(
        cls, blob: bytes, strategy: str = "redundancy"
    ) -> ShortestCycleCounter:
        """Inverse of :meth:`to_bytes`."""
        graph_len = int.from_bytes(blob[:8], "little")
        graph = graph_from_bytes(blob[8 : 8 + graph_len])
        index = CSCIndex.from_bytes(blob[8 + graph_len :], graph)
        return cls(index, strategy)

    def save(self, path: str | Path) -> None:
        """Persist graph + index to one file."""
        Path(path).write_bytes(self.to_bytes())

    @classmethod
    def load(
        cls, path: str | Path, strategy: str = "redundancy"
    ) -> ShortestCycleCounter:
        """Inverse of :meth:`save`."""
        return cls.from_bytes(Path(path).read_bytes(), strategy)
