"""Parallel BATCH-DECCNT: speculative per-hub fingerprint repairs.

The deletion side of :func:`repro.core.batch.apply_batch` runs one
construction BFS per affected hub *side*, in descending rank order.
Each of those BFSes is independent of the others except through the
label entries earlier repairs may have changed — the exact structure
PR 4's build pool exploits for construction — so this module farms the
repair BFSes out to the same long-lived forkserver pool
(:mod:`repro.build.parallel`) and commits the results in serial order,
bit-identical to the serial repair loop for any worker count.

The hand-off
------------
Workers are (re)initialized with the post-deletion graph and then
receive the *frozen pre-repair* label tables as two packed ``RPLS``
blobs (the same one-memcpy-per-vertex container the build broadcasts
use).  Each worker runs its share of ``(side, hub)`` repair tasks with
the build's own delta kernels — :func:`_repair_hub`'s BFS and the
kernels are the same algorithm, which the parallel-repair differential
suite pins — and ships back, per task, the fresh fingerprint entries
*and the list of vertices the BFS dequeued*.

The conflict rule
-----------------
Unlike construction waves (where every in-flight hub outranks every
write), a repaired hub's read set can interleave arbitrarily with other
repaired hubs' writes, so validity is decided per side at commit time
from its actual read set.  The forward repair of hub ``h`` (rank ``p``)
reads exactly

* ``h``'s canonical **out**-entries of rank ``< p`` (its ``hub_dist``
  map), and
* the **in**-labels of every vertex the BFS dequeued (each pruning
  query probes only the dequeued vertex),

so the speculative result is taken verbatim iff no committed repair has
changed ``h``'s out-labels and no dequeued vertex's in-labels changed;
the backward side is the mirror image.  On a hit the side is re-run
serially against the authoritative store — at that point exactly the
serial engine's state, so conflicts cost one extra BFS, never
correctness.  A hub's own forward commit cannot invalidate its backward
side structurally (rank-``p`` writes are invisible to a ``< p`` read),
but the rule is evaluated conservatively on whole vertices, so a false
positive merely triggers a redundant redo.

Because commits happen in the serial loop's order through the same
:func:`~repro.core.maintenance._commit_fingerprint`, the final stores
*and* the repair statistics (``repair_bfs_count``,
``vertices_visited``, entry deltas) are bit-identical to serial repair.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.build.parallel import _POOL_LOCK, _chunk, _get_pool
from repro.core.maintenance import _commit_fingerprint, _repair_hub

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.csc import CSCIndex

__all__ = ["PARALLEL_REPAIR_MIN_SIDES", "repair_hubs_parallel"]

#: Below this many repair sides the pool hand-off (graph init + full
#: RPLS broadcast) costs more than the BFSes; the batch engine keeps
#: such repairs serial.
PARALLEL_REPAIR_MIN_SIDES = 4


def repair_hubs_parallel(
    index: CSCIndex,
    del_in: set[int],
    del_out: set[int],
    workers: int,
    stats,
) -> int:
    """Repair every hub position in ``del_in`` (forward side) and
    ``del_out`` (backward side) using ``workers`` pool processes.

    Must be called with the deletions already applied to
    ``index.graph`` and the labels still pre-repair (exactly where the
    serial loop of :func:`~repro.core.batch.apply_batch` starts).
    Updates ``stats`` identically to the serial loop and returns the
    number of conflict redos.
    """
    graph = index.graph
    order = index.order
    inv_in, inv_out = index.ensure_inverted()
    rpls_in = index.store_in.to_bytes()
    rpls_out = index.store_out.to_bytes()

    hubs = sorted(del_in | del_out)
    tasks: list[tuple[bool, int, int]] = []
    for p in hubs:
        if p in del_in:
            tasks.append((True, p, order[p]))
        if p in del_out:
            tasks.append((False, p, order[p]))

    # One pooled session at a time (shared pipes; see build.parallel).
    with _POOL_LOCK:
        pool = _get_pool(workers)
        pool.init_build(graph, index.pos, "csc")
        pool.broadcast(("extend", rpls_in, rpls_out))
        results = pool.run_repairs(_chunk(tasks, pool.size))

    store_in, store_out = index.store_in, index.store_out
    changed_in: set[int] = set()
    changed_out: set[int] = set()
    conflicts = 0
    for p in hubs:
        stats.hubs_processed += 1
        h = order[p]
        if p in del_in:
            entries, visited = results[(p, True)]
            if h in changed_out or not changed_in.isdisjoint(visited):
                conflicts += 1
                changed_in.update(
                    _repair_hub(index, h, forward=True, stats=stats)
                )
            else:
                stats.repair_bfs_count += 1
                stats.vertices_visited += len(visited)
                fresh = {w: (d, c, f) for w, d, c, f in entries}
                changed_in.update(
                    _commit_fingerprint(store_in, inv_in, p, fresh, stats)
                )
        if p in del_out:
            entries, visited = results[(p, False)]
            if h in changed_in or not changed_out.isdisjoint(visited):
                conflicts += 1
                changed_out.update(
                    _repair_hub(index, h, forward=False, stats=stats)
                )
            else:
                stats.repair_bfs_count += 1
                stats.vertices_visited += len(visited)
                fresh = {w: (d, c, f) for w, d, c, f in entries}
                changed_out.update(
                    _commit_fingerprint(store_out, inv_out, p, fresh, stats)
                )
    return conflicts
