"""Build-worker kernels and the worker process entry point.

The kernels are *delta* variants of the construction BFSes in
:mod:`repro.core.csc` / :mod:`repro.labeling.hpspc`: instead of
appending into the label tables they run against a **frozen** table
state and return the ``(vertex, dist, count, flag)`` records the hub
would append, in append (BFS-dequeue) order, together with the list of
vertices the BFS dequeued.  The dequeued list *is* the side's label
read set — every pruning query probes exactly the dequeued vertex's
labels — which is what the repair committer
(:mod:`repro.core.parallel_repair`) intersects against committed
changes to decide whether a speculative repair is still valid.

Every pruning decision the BFS takes joins ``hub_dist`` — the
*canonical* hub-side entries of the hub vertex, whose ranks all lie
strictly above the wave — against the labels of the dequeued vertex.
In-wave label writes carry in-wave hub ranks, so they can never match a
``hub_dist`` key; the one way an in-wave write can change the BFS is by
landing a canonical entry on the hub vertex's *hub side* and thereby
extending ``hub_dist`` itself.  That is the committer's entire conflict
condition (see :mod:`repro.build.parallel` for the full argument).

The same kernels serve three callers: pool workers (against their
broadcast prefix copy), the master's serial prefix, and the master's
conflict redo (against the authoritative, fully committed tables) — one
code path, one behavior.

They deliberately *mirror* (rather than share) the in-place serial
kernels in :mod:`repro.core.csc` / :mod:`repro.labeling.hpspc`: the
serial builders are the independent reference the bit-identity
differential suite pins this module against, and folding the two into
one implementation would make that comparison vacuous while slowing the
serial path (the common case) with a commit indirection.  A change to
either copy must keep
``tests/properties/test_parallel_build_differential.py`` green — that
suite is what keeps the pair in lockstep.

A worker process (:func:`worker_main`) speaks a tiny pickled-tuple
protocol over its pipe:

==========  ============================================  =============
message     payload                                       reply
==========  ============================================  =============
``init``    ``(graph, pos, kind)``                        —
``extend``  ``(rpls_in, rpls_out)`` packed label bytes    —
``run``     ``[(rank, hub_vertex), ...]``                 ``result``
``repair``  ``[(forward, rank, hub_vertex), ...]``        ``result``
``qinit``   ``(order, rpls_in, rpls_out)`` frozen labels  ``ready``
``query``   ``(kind, items)`` bulk-query chunk            ``result``
``quit``    —                                             —
``_test``   ``"exit"`` / ``"raise"`` (crash injection)    —
==========  ============================================  =============

``run`` serves the builder (both sides per hub, visited lists
dropped); ``repair`` serves BATCH-DECCNT (one side per task, visited
lists shipped back for the committer's conflict check).  ``qinit`` /
``query`` serve bulk-query fan-out (:mod:`repro.core.bulk`): the
frozen stores arrive in the RPLS per-vertex memcpy format, the worker
rebuilds a query-only index replica and answers each ``query`` chunk
with the same bulk kernels the master uses in-process (``kind`` is
``"sccnt"`` or ``"spcnt"``).

Any exception is shipped back as ``("error", traceback)`` before the
worker exits; a vanished worker is detected by the master as an
``EOFError`` on the pipe and surfaced as
:class:`~repro.errors.WorkerCrashError`.
"""

from __future__ import annotations

import os
import traceback
from collections import deque

from repro.labeling.labelstore import UNREACHED, LabelStore

from repro.errors import ConfigurationError

__all__ = [
    "HubDelta",
    "SIDE_KERNELS",
    "csc_hub_delta",
    "hpspc_hub_delta",
    "kernel_for",
    "side_kernels",
    "tables_to_rpls",
    "extend_tables_from_rpls",
    "worker_main",
]

Entry = tuple[int, int, int, bool]
#: (fwd_entries, bwd_entries) — the hub's appends per BFS side
HubDelta = tuple[list[Entry], list[Entry]]


# ---------------------------------------------------------------------------
# Delta BFS kernels
# ---------------------------------------------------------------------------


def _csc_forward_delta(graph, h, ph, pos, label_in, label_out, dist, cnt):
    """Delta variant of :func:`repro.core.csc._forward_bfs` (in-label
    generation for hub ``h_in``; levels advance by 2 in ``Gb`` units)."""
    hub_dist: dict[int, int] = {}
    for q, d, _c, canonical in label_out[h]:
        if q >= ph:
            break
        if canonical:
            hub_dist[q] = d + 1
    out_neighbors = graph.out_neighbors

    dist[h] = 0
    cnt[h] = 1
    queue: deque[int] = deque((h,))
    visited = [h]
    entries: list[tuple[int, int, int, bool]] = []
    while queue:
        w = queue.popleft()
        d_w = dist[w]
        d_via = UNREACHED
        for q, dq, _cq, canonical in label_in[w]:
            if q >= ph:
                break
            if canonical:
                hd = hub_dist.get(q)
                if hd is not None and hd + dq < d_via:
                    d_via = hd + dq
        if d_via < d_w:
            continue
        entries.append((w, d_w, cnt[w], d_via > d_w))
        d_next = d_w + 2
        c_w = cnt[w]
        for u in out_neighbors(w):
            if dist[u] == UNREACHED:
                if pos[u] > ph:
                    dist[u] = d_next
                    cnt[u] = c_w
                    queue.append(u)
                    visited.append(u)
            elif dist[u] == d_next:
                cnt[u] += c_w
    for w in visited:
        dist[w] = UNREACHED
        cnt[w] = 0
    return entries, visited


def _csc_backward_delta(graph, h, ph, pos, label_in, label_out, dist, cnt):
    """Delta variant of :func:`repro.core.csc._backward_bfs` (out-label
    generation; dequeuing the hub's own couple records the cycle entry
    and prunes)."""
    hub_dist: dict[int, int] = {}
    for q, d, _c, canonical in label_in[h]:
        if q >= ph:
            break
        if canonical:
            hub_dist[q] = d
    in_neighbors = graph.in_neighbors

    queue: deque[int] = deque()
    visited: list[int] = []
    entries: list[tuple[int, int, int, bool]] = []
    for u in in_neighbors(h):
        if pos[u] >= ph:
            dist[u] = 1
            cnt[u] = 1
            queue.append(u)
            visited.append(u)
    while queue:
        w = queue.popleft()
        d_w = dist[w]
        d_via = UNREACHED
        for q, dq, _cq, canonical in label_out[w]:
            if q >= ph:
                break
            if canonical:
                hd = hub_dist.get(q)
                if hd is not None and dq + hd < d_via:
                    d_via = dq + hd
        if d_via < d_w:
            continue
        entries.append((w, d_w, cnt[w], d_via > d_w))
        if w == h:
            continue  # couple-cycle: cycle entry recorded, prune
        d_next = d_w + 2
        c_w = cnt[w]
        for u in in_neighbors(w):
            if dist[u] == UNREACHED:
                if pos[u] >= ph:
                    dist[u] = d_next
                    cnt[u] = c_w
                    queue.append(u)
                    visited.append(u)
            elif dist[u] == d_next:
                cnt[u] += c_w
    for w in visited:
        dist[w] = UNREACHED
        cnt[w] = 0
    return entries, visited


def csc_hub_delta(graph, h, ph, pos, label_in, label_out, dist, cnt):
    """Both construction BFSes of CSC hub ``h`` (rank ``ph``) against a
    frozen table state."""
    fwd, _ = _csc_forward_delta(
        graph, h, ph, pos, label_in, label_out, dist, cnt
    )
    bwd, _ = _csc_backward_delta(
        graph, h, ph, pos, label_in, label_out, dist, cnt
    )
    return (fwd, bwd)


def _hpspc_delta(
    graph, v, p, pos, hub_side_labels, target_labels, dist, cnt, forward
):
    """Delta variant of
    :func:`repro.labeling.hpspc._pruned_counting_bfs`."""
    hub_dist: dict[int, int] = {}
    for q, dq, _cq, canonical in hub_side_labels:
        if q >= p:
            break
        if canonical:
            hub_dist[q] = dq
    neighbors = graph.out_neighbors if forward else graph.in_neighbors

    dist[v] = 0
    cnt[v] = 1
    queue: deque[int] = deque((v,))
    visited = [v]
    entries: list[tuple[int, int, int, bool]] = []
    while queue:
        w = queue.popleft()
        d_w = dist[w]
        d_via = UNREACHED
        for q, dq, _cq, canonical in target_labels[w]:
            if q >= p:
                break
            if canonical:
                hd = hub_dist.get(q)
                if hd is not None and hd + dq < d_via:
                    d_via = hd + dq
        if d_via < d_w:
            continue
        entries.append((w, d_w, cnt[w], d_via > d_w))
        d_next = d_w + 1
        c_w = cnt[w]
        for u in neighbors(w):
            if dist[u] == UNREACHED:
                if pos[u] > p:
                    dist[u] = d_next
                    cnt[u] = c_w
                    queue.append(u)
                    visited.append(u)
            elif dist[u] == d_next:
                cnt[u] += c_w
    for w in visited:
        dist[w] = UNREACHED
        cnt[w] = 0
    return entries, visited


def hpspc_forward_delta(graph, h, ph, pos, label_in, label_out, dist, cnt):
    """HP-SPC in-label generation for hub ``h`` (hub side ``Lout(h)``)."""
    return _hpspc_delta(
        graph, h, ph, pos, label_out[h], label_in, dist, cnt, forward=True
    )


def hpspc_backward_delta(graph, h, ph, pos, label_in, label_out, dist, cnt):
    """HP-SPC out-label generation for hub ``h`` (hub side ``Lin(h)``)."""
    return _hpspc_delta(
        graph, h, ph, pos, label_in[h], label_out, dist, cnt, forward=False
    )


def hpspc_hub_delta(graph, h, ph, pos, label_in, label_out, dist, cnt):
    """Both pruned counting BFSes of HP-SPC hub ``h`` (rank ``ph``)."""
    fwd, _ = hpspc_forward_delta(
        graph, h, ph, pos, label_in, label_out, dist, cnt
    )
    bwd, _ = hpspc_backward_delta(
        graph, h, ph, pos, label_in, label_out, dist, cnt
    )
    return (fwd, bwd)


#: kind -> (forward side kernel, backward side kernel); the forward side
#: writes in-labels and reads (in-labels @ visited, out-labels @ hub),
#: the backward side the mirror image — for both index kinds.
SIDE_KERNELS = {
    "csc": (_csc_forward_delta, _csc_backward_delta),
    "hpspc": (hpspc_forward_delta, hpspc_backward_delta),
}

_KERNELS = {"csc": csc_hub_delta, "hpspc": hpspc_hub_delta}


def kernel_for(kind: str):
    """The per-hub delta kernel for an index kind."""
    try:
        return _KERNELS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown index kind {kind!r}; expected one of "
            f"{sorted(_KERNELS)}"
        ) from None


def side_kernels(kind: str):
    """The (forward, backward) side kernels for an index kind."""
    kernel_for(kind)  # validate the kind
    return SIDE_KERNELS[kind]


# ---------------------------------------------------------------------------
# RPLS hand-off helpers
# ---------------------------------------------------------------------------


def tables_to_rpls(tables: list[list[Entry]]) -> bytes:
    """Pack a (possibly sparse) list-of-tuple-lists table into ``RPLS``
    bytes — the same container :meth:`LabelStore.to_bytes` writes, so
    the hand-off rides PR 2's one-memcpy-per-vertex serialization."""
    store = LabelStore(len(tables))
    for v, entries in enumerate(tables):
        if entries:
            store.replace_vertex(v, entries)
    return store.to_bytes()


def extend_tables_from_rpls(blob: bytes, tables: list[list[Entry]]) -> int:
    """Append a broadcast ``RPLS`` delta onto local tuple-list tables;
    returns the number of entries appended.  Waves are committed in
    rank order, so appending keeps every per-vertex list sorted by hub
    rank."""
    store = LabelStore.from_bytes(blob)
    if len(store) != len(tables):
        raise ConfigurationError(
            f"prefix delta has {len(store)} vertices, tables have "
            f"{len(tables)}"
        )
    added = 0
    packed = store.packed
    for v in range(len(tables)):
        if packed[v]:
            entries = store.entries(v)
            tables[v].extend(entries)
            added += len(entries)
    return added


# ---------------------------------------------------------------------------
# Worker process entry point
# ---------------------------------------------------------------------------


def worker_main(conn) -> None:
    """Run one build worker until ``quit`` or pipe closure.

    Spawn-safe: everything the worker needs arrives through ``conn``.
    """
    graph = None
    pos: list[int] = []
    kernel = None
    fwd_kernel = bwd_kernel = None
    label_in: list[list[Entry]] = []
    label_out: list[list[Entry]] = []
    dist: list[int] = []
    cnt: list[int] = []
    qindex = None  # bulk-query replica, built by "qinit"
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                return  # master went away; nothing left to report to
            tag = msg[0]
            if tag == "init":
                graph, pos, kind = msg[1], msg[2], msg[3]
                kernel = kernel_for(kind)
                fwd_kernel, bwd_kernel = side_kernels(kind)
                n = graph.n
                label_in = [[] for _ in range(n)]
                label_out = [[] for _ in range(n)]
                dist = [UNREACHED] * n
                cnt = [0] * n
                # The ack doubles as a pipe resync point: the master
                # drains everything up to it, so a reply stranded by an
                # interrupted earlier build cannot desync this one.
                conn.send(("ready",))
            elif tag == "extend":
                extend_tables_from_rpls(msg[1], label_in)
                extend_tables_from_rpls(msg[2], label_out)
            elif tag == "run":
                results: list[tuple[int, HubDelta]] = []
                for ph, h in msg[1]:
                    delta = kernel(
                        graph, h, ph, pos, label_in, label_out, dist, cnt
                    )
                    results.append((ph, delta))
                conn.send(("result", results))
            elif tag == "repair":
                repairs: list[tuple[int, bool, list[Entry], list[int]]] = []
                for forward, ph, h in msg[1]:
                    k = fwd_kernel if forward else bwd_kernel
                    entries, visited = k(
                        graph, h, ph, pos, label_in, label_out, dist, cnt
                    )
                    repairs.append((ph, forward, entries, visited))
                conn.send(("result", repairs))
            elif tag == "qinit":
                # Bulk-query replica: rebuild the frozen stores from
                # their RPLS blobs (one memcpy per vertex) around a
                # topology-free graph shell — the query kernels only
                # touch labels, never adjacency.
                from repro.core.csc import CSCIndex
                from repro.graph.digraph import DiGraph
                from repro.labeling.ordering import positions

                order = msg[1]
                qindex = CSCIndex(
                    DiGraph(len(order)),
                    order,
                    positions(order),
                    LabelStore.from_bytes(msg[2]),
                    LabelStore.from_bytes(msg[3]),
                )
                conn.send(("ready",))
            elif tag == "query":
                from repro.core.bulk import sccnt_many, spcnt_many

                kind, items = msg[1], msg[2]
                if kind == "sccnt":
                    answers = sccnt_many(qindex, items)
                else:
                    answers = spcnt_many(qindex, items)
                conn.send(("result", answers))
            elif tag == "quit":
                return
            elif tag == "_test":
                # Crash injection for the worker-failure tests: "exit"
                # simulates a hard death (no goodbye on the pipe),
                # "raise" an internal worker bug.
                if msg[1] == "exit":
                    os._exit(3)
                raise RuntimeError("injected worker failure")
            else:
                raise ConfigurationError(f"unknown build-worker message {tag!r}")
    except BaseException:  # noqa: BLE001 - shipped to the master
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
