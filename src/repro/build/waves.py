"""Rank-wave partitioning for parallel index construction.

The pruned counting BFS of hub ``p`` reads only labels owned by
strictly higher-ranked hubs (``q < p``), so the rank order is the
build's dependency order.  :func:`plan_waves` cuts it into

* a **serial prefix** — the top-ranked hubs.  Their BFS trees are the
  largest and overlap almost everything (on a degree order the first
  hub alone labels most of the graph), so speculative execution would
  conflict constantly; the master just runs them in order.
* **rank-contiguous waves** — consecutive rank ranges whose hubs are
  dispatched to the worker pool in one round.  Within a wave every hub
  runs against the *frozen prefix* (all labels of ranks before the
  wave); intra-wave dependencies are repaired by the committer's
  conflict check (see :mod:`repro.build.parallel`).  Wave sizes grow
  geometrically: late waves are cheap per hub (pruning bites hardest
  at low ranks) and bigger rounds amortize the per-wave broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["WavePlan", "plan_waves"]

#: Geometric growth factor for successive wave sizes.
_GROWTH = 2


@dataclass(frozen=True)
class WavePlan:
    """A build schedule over ranks ``0..n-1``."""

    #: total hubs (== vertices)
    n: int
    #: ranks ``[0, serial_prefix)`` run serially on the master
    serial_prefix: int
    #: rank-contiguous ``(start, end)`` ranges, in order, covering
    #: ``[serial_prefix, n)``
    waves: list[tuple[int, int]]

    def parallel_hubs(self) -> int:
        """Hubs scheduled through the worker pool."""
        return self.n - self.serial_prefix


def plan_waves(
    n: int,
    workers: int,
    serial_prefix: int | None = None,
    wave_base: int | None = None,
    wave_max: int | None = None,
) -> WavePlan:
    """Partition ranks ``0..n-1`` into a serial prefix plus waves.

    Parameters default to a schedule tuned on the benchmark graphs:
    ``serial_prefix = max(8, 2 * workers)``, first wave
    ``4 * workers`` hubs, growing by x2 per wave up to
    ``64 * workers``.  All three accept explicit overrides so tests can
    force many tiny waves (maximizing intra-wave conflicts) on small
    graphs.
    """
    if n < 0:
        raise ConfigurationError(f"hub count must be non-negative, got {n}")
    if workers < 1:
        raise ConfigurationError(f"worker count must be positive, got {workers}")
    if serial_prefix is None:
        serial_prefix = max(8, 2 * workers)
    if serial_prefix < 0:
        raise ConfigurationError(
            f"serial prefix must be non-negative, got {serial_prefix}"
        )
    if wave_base is None:
        wave_base = max(16, 4 * workers)
    if wave_base < 1:
        raise ConfigurationError(f"wave size must be positive, got {wave_base}")
    if wave_max is None:
        wave_max = max(wave_base, 64 * workers)
    if wave_max < wave_base:
        raise ConfigurationError(
            f"wave_max {wave_max} smaller than first wave {wave_base}"
        )
    serial_prefix = min(serial_prefix, n)
    waves: list[tuple[int, int]] = []
    start = serial_prefix
    size = wave_base
    while start < n:
        end = min(n, start + size)
        waves.append((start, end))
        start = end
        size = min(wave_max, size * _GROWTH)
    return WavePlan(n=n, serial_prefix=serial_prefix, waves=waves)
