"""Parallel (multi-process) hub-labeling index construction.

Public surface:

* :func:`build_label_tables` — wave-sharded construction of one index's
  label tables, bit-identical to the serial builder for any worker
  count (the tentpole; see :mod:`repro.build.parallel`).
* :func:`resolve_workers` / :data:`ENV_WORKERS` — worker-count policy
  (explicit argument, else ``$REPRO_BUILD_WORKERS``, else serial).
* :func:`plan_waves` — the rank-wave schedule.
* :func:`shutdown_pool` — tear down the shared worker pool.

``CSCIndex.build(..., workers=N)`` and ``HPSPCIndex.build(...,
workers=N)`` are the intended entry points; this package is the
machinery behind them.
"""

from repro.build.parallel import (
    ENV_WORKERS,
    BuildPool,
    BuildStats,
    build_label_tables,
    resolve_workers,
    shutdown_pool,
)
from repro.build.waves import WavePlan, plan_waves

__all__ = [
    "ENV_WORKERS",
    "BuildPool",
    "BuildStats",
    "WavePlan",
    "build_label_tables",
    "plan_waves",
    "resolve_workers",
    "shutdown_pool",
]
