"""Multi-worker index construction: optimistic waves, exact commits.

The serial builders run one pruned counting BFS pair per hub, in rank
order, and every BFS reads only labels owned by strictly higher-ranked
hubs.  This module parallelizes that loop across worker *processes*
while keeping the result **bit-identical** to the serial build for any
worker count:

1. The master runs a short **serial prefix** (the top-ranked hubs —
   their BFS trees blanket the graph and would conflict constantly).
2. The remaining ranks are cut into rank-contiguous **waves**
   (:mod:`repro.build.waves`).  Before each wave the labels committed
   since the last broadcast are shipped to every worker as packed
   ``RPLS`` bytes (PR 2's one-memcpy-per-vertex serialization), so all
   workers hold the identical frozen prefix.
3. Workers run their share of the wave's hubs *speculatively* against
   that frozen prefix and return, per hub and BFS side, the entries the
   hub would append.
4. The master **commits in rank order**.  A speculative side is taken
   verbatim unless the wave's earlier commits put a *canonical* entry
   on the hub vertex's hub side; on a hit the master re-runs that side
   against the authoritative tables (which at that point are exactly
   the serial builder's state) — conflicts cost one extra BFS, never
   correctness.

   *Why that single test suffices:* every pruning decision of hub
   ``p``'s BFS joins ``hub_dist`` — the canonical hub-side entries of
   the hub vertex ``h``, all with ranks ``< p`` — against the dequeued
   vertex's labels, and consults nothing else.  A frozen-state
   ``hub_dist`` contains only ranks above the wave, while every
   in-wave label write carries an in-wave rank, so in-wave writes at
   dequeued vertices can never join and the speculative trajectory
   (queue evolution, counts, flags) is exactly serial.  The only way
   an in-wave commit can perturb the BFS is by extending ``hub_dist``
   itself, i.e. by landing a canonical entry on ``label_side(h)`` —
   which is precisely what the committer tests.  Non-canonical writes
   never matter (the pruning query skips them), and a hub's own
   forward entries (rank ``p``) are invisible to its backward pass
   (which reads ranks ``< p``), so there is no self-conflict.

Per-vertex label lists stay sorted because commits happen in rank
order, which also makes the packed stores — and therefore
``to_bytes()`` — byte-for-byte equal to a serial build.

The pool is a set of long-lived processes reused across builds (the
test suite under ``REPRO_BUILD_WORKERS=2`` rebuilds thousands of tiny
indexes); each build re-initializes them with its graph.  Worker death
is surfaced as :class:`~repro.errors.WorkerCrashError` (exit code) and
in-worker exceptions as :class:`~repro.errors.BuildError` carrying the
worker's traceback — never silently swallowed.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import sys
import threading
from dataclasses import dataclass, field

from repro.build.waves import WavePlan, plan_waves
from repro.build.worker import (
    HubDelta,
    side_kernels,
    tables_to_rpls,
    worker_main,
)
from repro.errors import ConfigurationError, BuildError, WorkerCrashError
from repro.labeling.labelstore import UNREACHED

__all__ = [
    "ENV_WORKERS",
    "BuildStats",
    "build_label_tables",
    "resolve_workers",
    "shutdown_pool",
]

#: Environment variable consulted when ``workers`` is not given
#: explicitly — lets CI run the whole suite over the parallel path.
ENV_WORKERS = "REPRO_BUILD_WORKERS"

Entry = tuple[int, int, int, bool]


def resolve_workers(workers: int | None = None) -> int:
    """The effective worker count: the explicit argument, else
    ``$REPRO_BUILD_WORKERS``, else 1 (serial).

    Inside a daemonic process the answer is always 1: daemonic
    processes cannot have children, so the pool is unreachable there —
    e.g. a cluster replica whose forkserver-inherited environment still
    carries ``REPRO_BUILD_WORKERS`` from the parent that first started
    the forkserver.  The serial path is bit-identical by contract.
    """
    if multiprocessing.current_process().daemon:
        return 1
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise BuildError(
                f"{ENV_WORKERS} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ConfigurationError(f"worker count must be positive, got {workers}")
    return workers


@dataclass
class BuildStats:
    """Instrumentation for one parallel build."""

    kind: str = "csc"
    workers: int = 1
    n: int = 0
    #: hubs run serially on the master (the wave plan's prefix)
    serial_hubs: int = 0
    #: hubs dispatched to the pool
    parallel_hubs: int = 0
    waves: int = 0
    #: BFS sides whose speculative result was discarded and re-run
    #: serially because an in-wave canonical write hit their read set
    conflicts: int = 0
    #: total RPLS prefix bytes shipped to workers (all broadcasts)
    broadcast_bytes: int = 0
    #: label entries in the finished tables (both sides)
    entries: int = 0
    details: dict = field(default_factory=dict)

    @property
    def conflict_fraction(self) -> float:
        """Redone sides / parallel BFS sides (2 per parallel hub)."""
        sides = 2 * self.parallel_hubs
        return self.conflicts / sides if sides else 0.0


# ---------------------------------------------------------------------------
# Worker pool (long-lived, reused across builds)
# ---------------------------------------------------------------------------


def _context():
    # forkserver: workers are forked from a clean server process, so
    # creating them is cheap *and* safe in a threaded master (the serve
    # engine's writer thread may trigger a rebuild-fallback build).
    # Its worker bootstrap re-imports __main__ when that module has a
    # file; an interactive parent ("<stdin>", a REPL) has none that
    # exists on disk, so there plain fork is the only context whose
    # workers can start at all.
    main_file = getattr(sys.modules.get("__main__"), "__file__", None)
    importable_main = main_file is None or os.path.exists(main_file)
    for method in (
        ("forkserver", "spawn") if importable_main else ("fork",)
    ):
        try:
            return multiprocessing.get_context(method)
        except ValueError:  # pragma: no cover - platform-dependent
            continue
    return multiprocessing.get_context()  # pragma: no cover


class BuildPool:
    """A fixed-size set of build worker processes."""

    def __init__(self, size: int) -> None:
        ctx = _context()
        self.size = size
        self._conns = []
        self._procs = []
        for i in range(size):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(child,),
                name=f"repro-build-worker-{i}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    def alive(self) -> bool:
        return all(proc.is_alive() for proc in self._procs)

    def broadcast(self, msg: tuple) -> None:
        for i in range(self.size):
            self._send(i, msg)

    def _send(self, i: int, msg: tuple) -> None:
        try:
            self._conns[i].send(msg)
        except (BrokenPipeError, OSError):
            raise self._crash(i) from None

    def _recv(self, i: int):
        try:
            reply = self._conns[i].recv()
        except (EOFError, OSError):
            raise self._crash(i) from None
        if reply[0] == "error":
            raise BuildError(
                f"build worker {i} failed:\n{reply[1]}"
            )
        return reply

    def _crash(self, i: int) -> WorkerCrashError:
        proc = self._procs[i]
        proc.join(timeout=5)
        return WorkerCrashError(
            f"build worker {i} (pid {proc.pid}) died unexpectedly "
            f"(exit code {proc.exitcode})"
        )

    def init_build(self, graph, pos: list[int], kind: str) -> None:
        self.broadcast(("init", graph, pos, kind))
        for i in range(self.size):
            # Drain until the init ack: discards any reply stranded on
            # the pipe by a build that was interrupted mid-wave.
            while self._recv(i)[0] != "ready":
                pass

    def run_wave(
        self, chunks: list[list[tuple[int, int]]]
    ) -> dict[int, HubDelta]:
        """Dispatch per-worker ``(rank, hub)`` chunks; collect all
        speculative results keyed by rank."""
        busy = []
        for i, chunk in enumerate(chunks):
            if chunk:
                self._send(i, ("run", chunk))
                busy.append(i)
        results: dict[int, HubDelta] = {}
        for i in busy:
            reply = self._recv(i)
            for ph, delta in reply[1]:
                results[ph] = delta
        return results

    def run_repairs(
        self, chunks: list[list[tuple[bool, int, int]]]
    ) -> dict[tuple[int, bool], tuple[list[Entry], list[int]]]:
        """Dispatch per-worker ``(forward, rank, hub)`` repair chunks;
        collect speculative ``(entries, visited)`` keyed by
        ``(rank, forward)``."""
        busy = []
        for i, chunk in enumerate(chunks):
            if chunk:
                self._send(i, ("repair", chunk))
                busy.append(i)
        results: dict[tuple[int, bool], tuple[list[Entry], list[int]]] = {}
        for i in busy:
            reply = self._recv(i)
            for ph, forward, entries, visited in reply[1]:
                results[(ph, forward)] = (entries, visited)
        return results

    def shutdown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("quit",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)


_POOL: BuildPool | None = None
#: Serializes every use of the shared pool: two builds interleaving
#: init/extend/run messages on the same pipes would consume each
#: other's replies.  Concurrent callers are real — the serve engine's
#: writer thread can hit a rebuild fallback while the main thread
#: builds — and a pooled build is CPU-bound anyway, so they queue.
_POOL_LOCK = threading.RLock()


def _get_pool(workers: int) -> BuildPool:
    """The shared pool, (re)created when the size changes or a worker
    has died (call with :data:`_POOL_LOCK` held)."""
    global _POOL
    if _POOL is not None and (_POOL.size != workers or not _POOL.alive()):
        _POOL.shutdown()
        _POOL = None
    if _POOL is None:
        _POOL = BuildPool(workers)
    return _POOL


def shutdown_pool() -> None:
    """Tear down the shared worker pool (atexit hook; also useful for
    tests that need a cold start)."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown()
            _POOL = None


atexit.register(shutdown_pool)


# ---------------------------------------------------------------------------
# The build loop
# ---------------------------------------------------------------------------


def _commit(
    tables: list[list[Entry]],
    delta: list[list[Entry]],
    canon_written: set[int],
    ph: int,
    entries: list[Entry],
) -> None:
    """Append one hub side's entries (rank order keeps lists sorted),
    mirror them into the pending broadcast delta, and track this wave's
    canonical writes for the conflict check."""
    for w, d, c, f in entries:
        tables[w].append((ph, d, c, f))
        delta[w].append((ph, d, c, f))
        if f:
            canon_written.add(w)


def _chunk(items: list, parts: int) -> list[list]:
    """Split into ``parts`` contiguous chunks, sizes as even as
    possible (rank-contiguous shares keep per-worker label locality)."""
    base, extra = divmod(len(items), parts)
    chunks = []
    at = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        chunks.append(items[at:at + size])
        at += size
    return chunks


def build_label_tables(
    graph,
    order: list[int],
    pos: list[int],
    kind: str,
    workers: int,
    serial_prefix: int | None = None,
    wave_base: int | None = None,
    wave_max: int | None = None,
) -> tuple[list[list[Entry]], list[list[Entry]], BuildStats]:
    """Construct ``(label_in, label_out)`` for ``graph`` under ``order``
    with a pool of ``workers`` processes.

    Bit-identical to the serial builder of the given ``kind`` for any
    worker count (including 1, which skips the pool entirely and runs
    the same kernels in rank order on the master).
    """
    n = graph.n
    plan: WavePlan = plan_waves(n, workers, serial_prefix, wave_base,
                                wave_max)
    if workers == 1:
        # One worker is just the serial build; no pool, one "wave".
        plan = WavePlan(n=n, serial_prefix=n, waves=[])
    forward, backward = side_kernels(kind)
    stats = BuildStats(
        kind=kind,
        workers=workers,
        n=n,
        serial_hubs=plan.serial_prefix,
        parallel_hubs=plan.parallel_hubs(),
        waves=len(plan.waves),
    )
    label_in: list[list[Entry]] = [[] for _ in range(n)]
    label_out: list[list[Entry]] = [[] for _ in range(n)]
    delta_in: list[list[Entry]] = [[] for _ in range(n)]
    delta_out: list[list[Entry]] = [[] for _ in range(n)]
    dist = [UNREACHED] * n
    cnt = [0] * n
    no_canon: set[int] = set()  # prefix commits need no conflict tracking

    for p in range(plan.serial_prefix):
        h = order[p]
        entries, _ = forward(graph, h, p, pos, label_in, label_out,
                             dist, cnt)
        _commit(label_in, delta_in, no_canon, p, entries)
        entries, _ = backward(graph, h, p, pos, label_in, label_out,
                              dist, cnt)
        _commit(label_out, delta_out, no_canon, p, entries)

    if plan.waves:
        # One pooled build at a time: interleaved pipe traffic from a
        # second thread would consume this build's replies.
        with _POOL_LOCK:
            pool = _get_pool(workers)
            pool.init_build(graph, pos, kind)
            for start, end in plan.waves:
                blob_in = tables_to_rpls(delta_in)
                blob_out = tables_to_rpls(delta_out)
                stats.broadcast_bytes += (
                    (len(blob_in) + len(blob_out)) * pool.size
                )
                pool.broadcast(("extend", blob_in, blob_out))
                delta_in = [[] for _ in range(n)]
                delta_out = [[] for _ in range(n)]
                hubs = [(p, order[p]) for p in range(start, end)]
                results = pool.run_wave(_chunk(hubs, pool.size))
                canon_in: set[int] = set()
                canon_out: set[int] = set()
                for p, h in hubs:
                    fwd_e, bwd_e = results[p]
                    # Decide both sides against the wave's commits
                    # *before* this hub's own (see module docstring: a
                    # hub's forward writes are invisible to its
                    # backward pass).
                    fwd_ok = h not in canon_out
                    bwd_ok = h not in canon_in
                    if not fwd_ok:
                        stats.conflicts += 1
                        fwd_e, _ = forward(graph, h, p, pos, label_in,
                                           label_out, dist, cnt)
                    _commit(label_in, delta_in, canon_in, p, fwd_e)
                    if not bwd_ok:
                        stats.conflicts += 1
                        bwd_e, _ = backward(graph, h, p, pos, label_in,
                                            label_out, dist, cnt)
                    _commit(label_out, delta_out, canon_out, p, bwd_e)

    stats.entries = (
        sum(len(es) for es in label_in)
        + sum(len(es) for es in label_out)
    )
    return label_in, label_out, stats
