"""Query routing across replicas: load balancing, failover, lag.

The router is itself a :class:`repro.service.QueryAPI` backend: it
answers each query from one live replica (round-robin), failing over to
the next on :class:`~repro.errors.ReplicaUnavailableError` and raising
:class:`~repro.errors.NoReplicaAvailableError` only when every replica
is out.  Its ``epoch`` is the **minimum** epoch over live replicas —
the consistency floor every routed query is guaranteed to be at least
as fresh as.  Each replica's epoch is monotone and replicas only ever
*leave* the live set, so the floor is monotone too (the invariant
``drive_mixed`` readers assert).

Locking: the router's own lock (rank 5, below every engine and client
lock) guards only the rotation cursor; it is **never held across an
RPC** — a slow replica must not serialize the other readers.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.analysis import lockdep
from repro.errors import NoReplicaAvailableError, ReplicaUnavailableError
from repro.service.health import FAILED, HEALTHY
from repro.types import CycleCount, PathCount

from repro.cluster.client import ReplicaClient

__all__ = ["ClusterRouter"]


class ClusterRouter:
    """Round-robin :class:`~repro.service.QueryAPI` over replica clients.

    Parameters
    ----------
    clients:
        The replica handles to balance over.
    primary_epoch:
        Optional zero-argument callable returning the primary's current
        published epoch; enables :meth:`lag`.
    """

    def __init__(
        self,
        clients: Sequence[ReplicaClient],
        primary_epoch: Callable[[], int] | None = None,
    ) -> None:
        if not clients:
            raise NoReplicaAvailableError("router needs at least one replica")
        self._clients = list(clients)
        self._primary_epoch = primary_epoch
        self._lock = lockdep.make_lock("ClusterRouter._lock", rank=5)
        self._cursor = 0
        self.queries_routed = 0
        self.failovers = 0

    # ------------------------------------------------------------------
    def live(self) -> list[ReplicaClient]:
        """Replicas still in rotation (connection not latched FAILED)."""
        return [c for c in self._clients if c.health == HEALTHY]

    def _rotation(self) -> list[ReplicaClient]:
        """Live replicas, starting at the rotation cursor (advanced by
        one per call — classic round robin)."""
        with self._lock:
            start = self._cursor
            self._cursor += 1
        live = self.live()
        if not live:
            raise NoReplicaAvailableError(
                "every replica has failed; no backend can answer"
            )
        k = start % len(live)
        return live[k:] + live[:k]

    def _route(self, method: str, *args):
        last: ReplicaUnavailableError | None = None
        for client in self._rotation():
            try:
                value = getattr(client, method)(*args)
            except ReplicaUnavailableError as exc:
                # The client latched FAILED; try the next one.
                last = exc
                with self._lock:
                    self.failovers += 1
                continue
            with self._lock:
                self.queries_routed += 1
            return value
        raise NoReplicaAvailableError(
            f"no replica could answer {method!r}"
        ) from last

    # ------------------------------------------------------------------
    # QueryAPI
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Minimum epoch across live replicas: the consistency floor of
        the next routed query (monotone while replicas only fail out)."""
        floors = []
        for client in self.live():
            try:
                floors.append(client.epoch)
            except ReplicaUnavailableError:
                continue
        if not floors:
            raise NoReplicaAvailableError(
                "every replica has failed; no epoch floor"
            )
        return min(floors)

    def sccnt(self, v: int) -> CycleCount:
        return self._route("sccnt", v)

    def sccnt_many(self, vertices: Sequence[int]) -> list[CycleCount]:
        return self._route("sccnt_many", vertices)

    def spcnt(self, x: int, y: int) -> PathCount:
        return self._route("spcnt", x, y)

    def spcnt_many(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[PathCount]:
        return self._route("spcnt_many", pairs)

    def top_suspicious(self, k: int = 10) -> list[tuple[int, CycleCount]]:
        return self._route("top_suspicious", k)

    # ------------------------------------------------------------------
    # Health / lag
    # ------------------------------------------------------------------
    def lag(self) -> dict[str, int | None]:
        """Per-replica epoch lag behind the primary (``None`` for a
        failed replica).  Requires ``primary_epoch``."""
        if self._primary_epoch is None:
            raise NoReplicaAvailableError(
                "router was built without a primary_epoch source"
            )
        primary = self._primary_epoch()
        out: dict[str, int | None] = {}
        for client in self._clients:
            if client.health != HEALTHY:
                out[client.name] = None
                continue
            try:
                out[client.name] = max(0, primary - client.epoch)
            except ReplicaUnavailableError:
                out[client.name] = None
        return out

    def health(self) -> dict[str, dict]:
        """Per-replica health report (state machine vocabulary of
        :mod:`repro.service.health`, plus epoch where reachable)."""
        report: dict[str, dict] = {}
        for client in self._clients:
            entry: dict = {"state": client.health}
            if client.health == HEALTHY:
                try:
                    status = client.status()
                    entry["epoch"] = status["epoch"]
                    entry["last_seq"] = status["last_seq"]
                    entry["resyncs"] = status["resyncs"]
                except ReplicaUnavailableError:
                    entry["state"] = FAILED
            report[client.name] = entry
        return report

    def __repr__(self) -> str:
        return (
            f"ClusterRouter({len(self.live())}/{len(self._clients)} live, "
            f"routed={self.queries_routed}, failovers={self.failovers})"
        )
