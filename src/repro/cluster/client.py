"""In-process handle to one replica: the pipe side of the QueryAPI.

A :class:`ReplicaClient` owns the parent end of a replica process's
pipe and implements :class:`repro.service.QueryAPI` over it, so any
code written against the protocol — ``drive_mixed`` readers, the
benchmarks, the monitor — can query a replica process exactly as it
queries a local :class:`~repro.service.Snapshot`.

Failure model: one bad interaction condemns the connection.  A timeout
or a broken pipe leaves the request/response stream unsynchronized (a
late reply would be attributed to the wrong request), so the client
latches ``FAILED`` — the engine's own health vocabulary — and every
later call raises :class:`~repro.errors.ReplicaUnavailableError`
immediately.  The router treats a failed client as out of rotation.
"""

from __future__ import annotations

from collections.abc import Sequence

import repro.errors as _errors
from repro.analysis import lockdep
from repro.errors import ClusterError, ReplicaUnavailableError, ReproError
from repro.service.health import FAILED, HEALTHY
from repro.types import CycleCount, PathCount

__all__ = ["ReplicaClient"]


def _rebuild_error(name: str, message: str) -> Exception:
    """Re-raise a replica-side error under its own type when it is part
    of the :mod:`repro.errors` taxonomy (so ``except VertexError:``
    works across the process boundary), else as a ClusterError."""
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        err = cls.__new__(cls)
        Exception.__init__(err, message)
        return err
    return ClusterError(f"replica error {name}: {message}")


class ReplicaClient:
    """One replica process, spoken to over its pipe (thread-safe).

    Implements :class:`repro.service.QueryAPI`; ``epoch`` is one
    ``status`` round-trip.  Lock rank 6 sits below every engine lock:
    a reader thread holding this lock never calls into the engine, and
    the router (rank 5) may pick under its own lock before calling here.
    """

    def __init__(self, conn, process, name: str,
                 timeout: float = 30.0) -> None:
        self._conn = conn
        self._process = process
        self.name = name
        self._timeout = timeout
        self._lock = lockdep.make_lock(
            f"ReplicaClient[{name}]._lock", rank=6
        )
        self._health = HEALTHY

    # ------------------------------------------------------------------
    @property
    def health(self) -> str:
        """``HEALTHY`` or (latched) ``FAILED``."""
        return self._health

    @property
    def alive(self) -> bool:
        return self._health == HEALTHY and self._process.is_alive()

    def _fail(self, why: str, cause: BaseException | None = None):
        self._health = FAILED
        err = ReplicaUnavailableError(f"replica {self.name}: {why}")
        if cause is not None:
            err.__cause__ = cause
        return err

    def _call(self, *request):
        with self._lock:
            if self._health == FAILED:
                raise ReplicaUnavailableError(
                    f"replica {self.name}: connection already failed"
                )
            try:
                self._conn.send(request)
                if not self._conn.poll(self._timeout):
                    raise self._fail(
                        f"no reply to {request[0]!r} within "
                        f"{self._timeout}s"
                    )
                reply = self._conn.recv()
            except (OSError, EOFError, BrokenPipeError) as exc:
                raise self._fail("pipe broken", exc) from exc
        if reply[0] == "ok":
            return reply[1]
        raise _rebuild_error(reply[1], reply[2])

    # ------------------------------------------------------------------
    # QueryAPI
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self._call("status")["epoch"]

    def sccnt(self, v: int) -> CycleCount:
        return self._call("sccnt", v)

    def sccnt_many(self, vertices: Sequence[int]) -> list[CycleCount]:
        return self._call("sccnt_many", list(vertices))

    def spcnt(self, x: int, y: int) -> PathCount:
        return self._call("spcnt", x, y)

    def spcnt_many(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[PathCount]:
        return self._call("spcnt_many", list(pairs))

    def top_suspicious(self, k: int = 10) -> list[tuple[int, CycleCount]]:
        return self._call("top_suspicious", k)

    # ------------------------------------------------------------------
    # Cluster management surface
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """The replica's progress counters (epoch, last_seq, resyncs...)."""
        return self._call("status")

    def digests(self) -> dict[int, str]:
        """Per-epoch SHA-256 of ``counter.to_bytes()`` (when the replica
        was started with digest recording)."""
        return self._call("digests")

    def state_bytes(self) -> bytes:
        """The replica counter's full ``to_bytes()`` blob, for direct
        bit-identity checks against the primary."""
        return self._call("state_bytes")

    def stop(self, timeout: float = 10.0) -> dict | None:
        """Ask the replica process to exit; returns its final status
        (``None`` when it was already gone)."""
        final = None
        try:
            final = self._call("stop")
        except (ReplicaUnavailableError, ClusterError):
            pass
        self._health = FAILED
        self._process.join(timeout)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        return final

    def __repr__(self) -> str:
        return f"ReplicaClient({self.name}, health={self._health})"
