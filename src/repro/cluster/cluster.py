"""The sharded serving tier: one primary, N replica processes, a router.

Topology (one process per box)::

    clients ──► Cluster.submit ──► ServeEngine (primary)
                                     │  WAL (log-before-publish)
                      ┌──────────────┼──────────────┐
                 WalTailer      WalTailer       WalTailer
                 replica 0      replica 1       replica 2     (processes)
                      │              │              │
                   snapshot       snapshot       snapshot
                      └──────┬───────┴──────┬───────┘
                             ▼              ▼
                        ClusterRouter.sccnt / spcnt / ...

The WAL **is** the replication transport: the primary's
log-before-publish discipline (PR 4) means the log is a complete,
durable, framed description of every published epoch, so replicas need
no second channel — they bootstrap from the newest checkpoint via
:func:`repro.persist.recover` (RPLS per-vertex bytes, the PR 8
zero-copy transport) and stream the suffix with a
:class:`~repro.persist.WalTailer`.

Consistency: every replica epoch is bit-identical to the primary's
state at that epoch (deterministic batched maintenance over identical
framing).  With ``record_digests=True`` both sides keep per-epoch
SHA-256 digests of ``counter.to_bytes()`` and
:meth:`Cluster.verify_replicas` machine-checks the claim — the cluster
benchmark runs that gate before it starts timing.  Replicas lag the
primary by however many epochs they have not yet tailed; the router
reports the lag but never routes a query to a dead replica.
"""

from __future__ import annotations

import hashlib
import time

from repro.core.counter import ShortestCycleCounter
from repro.errors import ClusterError, ConfigurationError
from repro.graph.digraph import DiGraph
from repro.build.parallel import _context
from repro.service.config import ServeConfig
from repro.service.engine import Op, ServeEngine
from repro.service.snapshot import Snapshot

from repro.cluster.client import ReplicaClient
from repro.cluster.replica import replica_main
from repro.cluster.router import ClusterRouter

__all__ = ["Cluster"]


class Cluster:
    """A primary :class:`~repro.service.ServeEngine` plus ``replicas``
    reader processes tailing its WAL, behind a :class:`ClusterRouter`.

    Parameters
    ----------
    source:
        Graph or counter for the primary (as for :class:`ServeEngine`;
        an existing recoverable ``data_dir`` wins over it).
    config:
        The primary's :class:`~repro.service.ServeConfig`.
        ``config.durability.data_dir`` is **required** — the WAL is the
        replication transport, so a memory-only engine has nothing to
        replicate from.
    replicas:
        Reader processes to launch at :meth:`start`.
    record_digests:
        Keep per-epoch SHA-256 digests of the counter bytes on the
        primary *and* every replica, enabling
        :meth:`verify_replicas`.  Costs one serialization pass per
        published epoch — leave off for throughput measurement runs.
    replica_timeout:
        Per-RPC timeout for replica clients.
    monitor:
        Optional :class:`~repro.monitor.CycleMonitor` for the primary.
    """

    def __init__(
        self,
        source: DiGraph | ShortestCycleCounter | None = None,
        config: ServeConfig | None = None,
        *,
        replicas: int = 2,
        record_digests: bool = True,
        replica_timeout: float = 30.0,
        monitor=None,
    ) -> None:
        if replicas < 1:
            raise ConfigurationError("replicas must be at least 1")
        if config is None or config.durability.data_dir is None:
            raise ConfigurationError(
                "cluster serving requires config.durability.data_dir: "
                "the primary's WAL is the replication transport replicas "
                "bootstrap from and tail"
            )
        self._replicas = replicas
        self._record_digests = record_digests
        self._replica_timeout = replica_timeout
        #: primary epoch -> sha256(counter.to_bytes()) at that epoch
        self._digests: dict[int, str] = {}
        self._engine = ServeEngine(
            source,
            config=config,
            monitor=monitor,
            on_publish=self._digest_epoch if record_digests else None,
        )
        self._clients: list[ReplicaClient] = []
        self._router: ClusterRouter | None = None
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    def _digest_epoch(self, snap: Snapshot) -> None:
        # Writer thread, between batches: the live graph still equals
        # the snapshot's capture state (the checkpoint_now precondition),
        # so serializing through a throwaway counter is exact.
        counter = ShortestCycleCounter(
            snap.index, self._engine.counter.strategy
        )
        self._digests[snap.epoch] = hashlib.sha256(
            counter.to_bytes()
        ).hexdigest()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Cluster:
        """Start the primary, spawn the replica processes (each
        bootstraps from the newest checkpoint), and build the router."""
        if self._started:
            raise ClusterError("cluster already started")
        self._engine.start()
        data_dir = self._engine.config.durability.data_dir
        ctx = _context()
        try:
            for i in range(self._replicas):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=replica_main,
                    args=(child, str(data_dir)),
                    kwargs={"record_digests": self._record_digests},
                    name=f"repro-replica-{i}",
                    daemon=True,
                )
                proc.start()
                child.close()
                self._clients.append(
                    ReplicaClient(
                        parent,
                        proc,
                        f"replica-{i}",
                        timeout=self._replica_timeout,
                    )
                )
        except Exception:
            self.stop()
            raise
        self._router = ClusterRouter(
            self._clients,
            primary_epoch=lambda: self._engine.snapshot().epoch,
        )
        self._started = True
        return self

    def stop(self) -> None:
        """Stop replicas first (they must not tail the shutdown
        checkpoint's segment prune mid-poll), then the primary.
        Idempotent."""
        if self._stopped:
            return
        self._stopped = True
        for client in self._clients:
            client.stop()
        self._engine.stop()

    def __enter__(self) -> Cluster:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Write path (primary) and read path (router)
    # ------------------------------------------------------------------
    @property
    def engine(self) -> ServeEngine:
        """The primary."""
        return self._engine

    @property
    def router(self) -> ClusterRouter:
        """The query front-end (a :class:`~repro.service.QueryAPI`)."""
        if self._router is None:
            raise ClusterError("cluster not started")
        return self._router

    def submit(self, op: str, tail: int, head: int) -> bool:
        return self._engine.submit(op, tail, head)

    def submit_many(self, ops) -> int:
        return self._engine.submit_many(ops)

    def flush(self, timeout: float | None = None) -> Snapshot:
        return self._engine.flush(timeout)

    # ------------------------------------------------------------------
    # Consistency / observability
    # ------------------------------------------------------------------
    def wait_for_epoch(
        self, epoch: int, timeout: float = 30.0
    ) -> None:
        """Block until every *live* replica has tailed up to ``epoch``
        (raises :class:`ClusterError` on timeout or if every replica
        died)."""
        deadline = time.monotonic() + timeout
        while True:
            live = self.router.live()
            if not live:
                raise ClusterError(
                    "every replica failed while waiting for epoch "
                    f"{epoch}"
                )
            behind = [
                c.name for c in live if c.status()["epoch"] < epoch
            ]
            if not behind:
                return
            if time.monotonic() >= deadline:
                raise ClusterError(
                    f"replicas {behind} still behind epoch {epoch} "
                    f"after {timeout}s"
                )
            time.sleep(0.005)

    def verify_replicas(self) -> dict[str, int]:
        """Machine-check bit-identity: every epoch a replica published
        must carry the same ``to_bytes()`` SHA-256 the primary recorded
        for that epoch.  Returns ``{replica: epochs checked}``; raises
        :class:`ClusterError` on any mismatch (or when digest recording
        is off)."""
        if not self._record_digests:
            raise ClusterError(
                "verify_replicas needs record_digests=True"
            )
        checked: dict[str, int] = {}
        for client in self.router.live():
            matched = 0
            for epoch, digest in sorted(client.digests().items()):
                expected = self._digests.get(epoch)
                if expected is None:
                    # The primary recorded every published epoch, so an
                    # unknown epoch on a replica is itself divergence.
                    raise ClusterError(
                        f"{client.name} published epoch {epoch} the "
                        "primary never recorded"
                    )
                if digest != expected:
                    raise ClusterError(
                        f"{client.name} diverged at epoch {epoch}: "
                        f"replica sha256 {digest[:12]}… != primary "
                        f"{expected[:12]}…"
                    )
                matched += 1
            if matched == 0:
                raise ClusterError(
                    f"{client.name} published no verifiable epochs"
                )
            checked[client.name] = matched
        if not checked:
            raise ClusterError("no live replicas to verify")
        return checked

    def status(self) -> dict:
        """One structured health/lag report for the whole tier."""
        primary = {
            "epoch": self._engine.snapshot().epoch,
            "health": self._engine.health,
        }
        return {
            "primary": primary,
            "replicas": self.router.health(),
            "lag": self.router.lag(),
        }
