"""The replica process: checkpoint bootstrap + WAL-suffix streaming.

``replica_main`` is the entry point of one reader process in the
cluster.  It reconstructs the primary's state by exactly the crash
recovery path (:func:`repro.persist.recover` — newest checkpoint chain
plus acknowledged WAL suffix, bit-identical by the PR 4 contract), then
keeps following the live log with a :class:`~repro.persist.WalTailer`,
applying each batch record under the identical framing the primary and
recovery use.  Because batched maintenance is deterministic in its
inputs, the replica's counter bytes equal the primary's at every epoch —
the property the cluster harness machine-checks via per-epoch SHA-256
digests of ``counter.to_bytes()``.

Failure semantics mirror recovery:

* a record whose ``apply_batch`` raises a :class:`~repro.errors.ReproError`
  is skipped with **no epoch bump** — the primary kept its pre-batch
  state when the same deterministic exception fired;
* an ``ABORT`` for a record this replica *successfully applied* means
  the primary's failure was nondeterministic and the replica has
  diverged — it re-bootstraps from the newest checkpoint (as does a
  :class:`~repro.errors.WalTailGapError` after a prune outran the
  tailer, or a :class:`~repro.errors.WalRolledBackError`).

The process is single-threaded: one loop alternates between answering
queries from its published snapshot (queries are prioritized) and
draining the tailer.  Queries are answered from a frozen
:class:`~repro.service.Snapshot`, so a long repair in ``apply_batch``
never blocks correctness — only freshness (that is the replica's lag).
"""

from __future__ import annotations

import hashlib
import os
import time
from pathlib import Path

from repro.errors import (
    PersistenceError,
    RecoveryError,
    ReproError,
    WalRolledBackError,
    WalTailGapError,
)
from repro.persist.recovery import WAL_DIR, recover
from repro.persist.tail import WalTailer
from repro.persist.wal import ABORT, BATCH

__all__ = ["replica_main"]

#: seconds the idle loop sleeps on the query pipe between tail polls
_IDLE_POLL = 0.002
#: bootstrap attempts (recovery can race a concurrent checkpoint/prune)
_BOOTSTRAP_TRIES = 5


def _digest(counter) -> str:
    return hashlib.sha256(counter.to_bytes()).hexdigest()


class _ReplicaState:
    """Everything a bootstrap (or re-bootstrap) resets atomically."""

    def __init__(self, data_dir: Path, strategy: str | None,
                 record_digests: bool) -> None:
        last_error: Exception | None = None
        for attempt in range(_BOOTSTRAP_TRIES):
            try:
                result = recover(data_dir, strategy)
                break
            except (RecoveryError, PersistenceError, OSError) as exc:
                # The primary may be mid-checkpoint or mid-prune; the
                # directory converges to a recoverable state.
                last_error = exc
                time.sleep(0.01 * (attempt + 1))
        else:
            raise RecoveryError(
                f"replica bootstrap failed after {_BOOTSTRAP_TRIES} "
                f"attempts: {last_error!r}"
            )
        self.counter = result.counter
        self.epoch = result.epoch
        self.ops_applied = result.ops_applied
        self.tailer = WalTailer(data_dir / WAL_DIR, after_seq=result.last_seq)
        self.snapshot = self.counter.snapshot(self.epoch, self.ops_applied)
        #: seqs applied since this bootstrap — an ABORT naming one of
        #: these is the divergence signal
        self.applied_seqs: set[int] = set()
        #: epoch -> sha256(to_bytes()); only epochs published from THIS
        #: bootstrap lineage (cleared on divergence: those states were
        #: never the primary's)
        self.digests: dict[int, str] = {}
        if record_digests:
            self.digests[self.epoch] = _digest(self.counter)


def replica_main(
    conn,
    data_dir: str,
    strategy: str | None = None,
    record_digests: bool = False,
) -> None:
    """Serve queries over ``conn`` from a tailed replica of ``data_dir``.

    Runs until a ``("stop",)`` request or EOF on the pipe.  Requests are
    tuples ``(method, *args)``; responses are ``("ok", value)`` or
    ``("err", type_name, message)``.
    """
    data_dir = Path(data_dir)
    state = _ReplicaState(data_dir, strategy, record_digests)
    resyncs = 0
    records_applied = 0
    records_skipped = 0

    def rebootstrap() -> None:
        nonlocal state, resyncs
        state = _ReplicaState(data_dir, strategy, record_digests)
        resyncs += 1

    def drain_tail() -> None:
        nonlocal records_applied, records_skipped
        try:
            records = state.tailer.poll()
        except (WalTailGapError, WalRolledBackError):
            rebootstrap()
            return
        for record in records:
            if record.kind == ABORT:
                if record.seq in state.applied_seqs:
                    # We applied a batch the primary rolled back: the
                    # primary's failure was nondeterministic and every
                    # state since is not the primary's.  Start over from
                    # its durable truth.
                    rebootstrap()
                    return
                continue  # abort of a record we also skipped
            if record.kind != BATCH:  # pragma: no cover - future kinds
                continue
            state.ops_applied += len(record.ops)
            try:
                state.counter.apply_batch(
                    list(record.ops),
                    rebuild_threshold=record.rebuild_threshold,
                    on_invalid=record.on_invalid,
                )
            except ReproError:
                records_skipped += 1
                continue  # deterministic failure: primary skipped too
            state.applied_seqs.add(record.seq)
            state.epoch += 1
            records_applied += 1
            state.snapshot = state.counter.snapshot(
                state.epoch, state.ops_applied
            )
            if record_digests:
                state.digests[state.epoch] = _digest(state.counter)

    def status() -> dict:
        return {
            "epoch": state.epoch,
            "last_seq": state.tailer.last_seq,
            "ops_applied": state.ops_applied,
            "records_applied": records_applied,
            "records_skipped": records_skipped,
            "resyncs": resyncs,
            "pid": os.getpid(),
        }

    def handle(request) -> bool:
        """Answer one request; ``False`` ends the serving loop."""
        method, *args = request
        snap = state.snapshot
        try:
            if method == "sccnt":
                value = snap.sccnt(*args)
            elif method == "sccnt_many":
                value = snap.sccnt_many(*args)
            elif method == "spcnt":
                value = snap.spcnt(*args)
            elif method == "spcnt_many":
                value = snap.spcnt_many(*args)
            elif method == "top_suspicious":
                value = snap.top_suspicious(*args)
            elif method == "status":
                value = status()
            elif method == "digests":
                value = dict(state.digests)
            elif method == "state_bytes":
                value = state.counter.to_bytes()
            elif method == "stop":
                conn.send(("ok", status()))
                return False
            else:
                conn.send(("err", "ClusterError",
                           f"unknown replica method {method!r}"))
                return True
        except Exception as exc:  # noqa: BLE001 - shipped to the client
            conn.send(("err", type(exc).__name__, str(exc)))
            return True
        conn.send(("ok", value))
        return True

    try:
        running = True
        while running:
            # Queries first — readers should never wait behind a long
            # repair that is only about freshness, not correctness.
            answered = False
            while conn.poll(0):
                answered = True
                if not handle(conn.recv()):
                    running = False
                    break
            if not running:
                break
            before = state.tailer.records_delivered
            drain_tail()
            if not answered and state.tailer.records_delivered == before:
                # Idle: sleep on the pipe so a query wakes us instantly.
                conn.poll(_IDLE_POLL)
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away: exit quietly
    finally:
        conn.close()
