"""Sharded replica serving: scale reads across processes, not threads.

:mod:`repro.service` scales reads across *threads* of one process;
this package scales them across *processes* — a primary
:class:`~repro.service.ServeEngine` owns the write path, and N replica
processes each maintain their own full copy of the counter, tailing the
primary's write-ahead log as a replication stream (see
:mod:`repro.cluster.cluster` for the topology diagram and consistency
contract).  A :class:`ClusterRouter` load-balances queries over the
replicas behind the same :class:`repro.service.QueryAPI` protocol the
local backends implement, so ``drive_mixed``, the monitor, and the
benchmarks run unmodified against either tier.

Pieces:

* :class:`Cluster` — the facade: primary + replicas + router,
  ``start``/``stop``, per-epoch digest verification, lag reporting;
* :class:`ClusterRouter` — round-robin QueryAPI with failover and a
  monotone min-epoch consistency floor;
* :class:`ReplicaClient` — QueryAPI over one replica's pipe;
* :func:`replica_main` — the replica process body (checkpoint
  bootstrap via :func:`repro.persist.recover`, then
  :class:`~repro.persist.WalTailer` streaming).
"""

from repro.cluster.client import ReplicaClient
from repro.cluster.cluster import Cluster
from repro.cluster.replica import replica_main
from repro.cluster.router import ClusterRouter

__all__ = [
    "Cluster",
    "ClusterRouter",
    "ReplicaClient",
    "replica_main",
]
