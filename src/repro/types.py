"""Shared lightweight result types."""

from __future__ import annotations

from typing import NamedTuple


class CycleCount(NamedTuple):
    """Result of an ``SCCnt`` query.

    ``count`` is the number of shortest cycles through the query vertex and
    ``length`` their common length in the original graph; a vertex on no
    cycle reports ``count == 0`` and ``length == inf`` (mirroring
    Algorithm 1's ``(∞, 0)`` return).
    """

    count: int
    length: float

    @property
    def has_cycle(self) -> bool:
        """Whether any cycle passes through the queried vertex."""
        return self.count > 0


#: The "no cycle through this vertex" result.
NO_CYCLE = CycleCount(0, float("inf"))


class PathCount(NamedTuple):
    """Result of an ``SPCnt`` pair query (:meth:`CSCIndex.spcnt`).

    ``count`` is the number of shortest ``x -> y`` paths in the original
    graph and ``dist`` their common length in original-graph hops; an
    unreachable target reports ``count == 0`` and ``dist == inf``.
    """

    count: int
    dist: float

    @property
    def reachable(self) -> bool:
        """Whether any ``x -> y`` path exists."""
        return self.count > 0


#: The "target unreachable" result.
NO_PATH = PathCount(0, float("inf"))
